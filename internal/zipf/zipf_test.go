package zipf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadArgs(t *testing.T) {
	for _, tc := range []struct {
		n     int
		theta float64
	}{{0, 0.5}, {-1, 0.5}, {10, -0.1}, {10, 1.0}, {10, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %v) did not panic", tc.n, tc.theta)
				}
			}()
			New(tc.n, tc.theta)
		}()
	}
}

func TestUniformWhenThetaZero(t *testing.T) {
	g := New(100, 0)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 100)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[g.Next(rng)]++
	}
	// Each bucket expects 1000 ± a few sigma (~31).
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("bucket %d: count %d far from uniform expectation 1000", i, c)
		}
	}
}

func TestRanksInRange(t *testing.T) {
	for _, theta := range []float64{0, 0.2, 0.5, 0.8, 0.99} {
		for _, n := range []int{1, 2, 10, 1000} {
			g := New(n, theta)
			rng := rand.New(rand.NewSource(int64(n)))
			for i := 0; i < 2000; i++ {
				r := g.Next(rng)
				if r < 0 || r >= n {
					t.Fatalf("n=%d theta=%v: rank %d out of range", n, theta, r)
				}
			}
		}
	}
}

func TestSingleItemAlwaysZero(t *testing.T) {
	g := New(1, 0.8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if r := g.Next(rng); r != 0 {
			t.Fatalf("n=1 returned %d", r)
		}
	}
}

// TestSkewConcentratesMass verifies the defining property the paper relies
// on: "As α grows, we are more likely to update a small number of hot
// objects." The observed frequency of the hottest 1% of items must grow with
// theta.
func TestSkewConcentratesMass(t *testing.T) {
	const n, draws = 10000, 200000
	hotShare := func(theta float64) float64 {
		g := New(n, theta)
		rng := rand.New(rand.NewSource(11))
		hot := 0
		for i := 0; i < draws; i++ {
			if g.Next(rng) < n/100 {
				hot++
			}
		}
		return float64(hot) / draws
	}
	s0, s5, s8, s99 := hotShare(0), hotShare(0.5), hotShare(0.8), hotShare(0.99)
	if !(s0 < s5 && s5 < s8 && s8 < s99) {
		t.Errorf("hot-1%% share not increasing with skew: %v %v %v %v", s0, s5, s8, s99)
	}
	if s0 < 0.005 || s0 > 0.02 {
		t.Errorf("uniform hot share = %v, want ≈0.01", s0)
	}
	if s99 < 0.3 {
		t.Errorf("theta=0.99 hot share = %v, want heavy concentration (>0.3)", s99)
	}
}

// TestMatchesExactDistribution compares sample frequencies of the first few
// ranks against exact Zipf probabilities.
func TestMatchesExactDistribution(t *testing.T) {
	const n, draws = 1000, 400000
	for _, theta := range []float64{0.5, 0.8, 0.99} {
		g := New(n, theta)
		rng := rand.New(rand.NewSource(99))
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[g.Next(rng)]++
		}
		for r := 0; r < 5; r++ {
			want := g.Probability(r)
			got := float64(counts[r]) / draws
			if math.Abs(got-want) > 0.15*want+0.002 {
				t.Errorf("theta=%v rank %d: freq %v, want ≈%v", theta, r, got, want)
			}
		}
	}
}

func TestProbabilitySumsToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 0.99} {
		g := New(500, theta)
		sum := 0.0
		for r := 0; r < 500; r++ {
			sum += g.Probability(r)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("theta=%v: probabilities sum to %v", theta, sum)
		}
	}
	g := New(10, 0.5)
	if g.Probability(-1) != 0 || g.Probability(10) != 0 {
		t.Error("out-of-range Probability should be 0")
	}
}

func TestProbabilityMonotone(t *testing.T) {
	g := New(100, 0.8)
	for r := 1; r < 100; r++ {
		if g.Probability(r) > g.Probability(r-1) {
			t.Fatalf("Probability not non-increasing at rank %d", r)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := New(1000, 0.8)
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		if g.Next(a) != g.Next(b) {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestZetaApproximationAccuracy(t *testing.T) {
	// The Euler–Maclaurin branch must agree closely with the direct sum.
	for _, theta := range []float64{0.2, 0.8, 0.99} {
		direct := zeta(2_000_000, theta)
		// Force the approximation path via the helper on a value just above
		// the crossover by comparing two computations around n=2e6 scaled.
		approx := zeta(1_000_000, theta)
		oneMinus := 1 - theta
		approx += (math.Pow(2e6, oneMinus) - math.Pow(1e6, oneMinus)) / oneMinus
		approx += (math.Pow(2e6, -theta) - math.Pow(1e6, -theta)) / 2
		if rel := math.Abs(approx-direct) / direct; rel > 1e-3 {
			t.Errorf("theta=%v: Euler–Maclaurin rel error %v", theta, rel)
		}
	}
}

// Property: every drawn rank is valid for arbitrary (n, theta) in the
// supported domain.
func TestQuickRanksValid(t *testing.T) {
	f := func(nRaw uint16, thetaRaw uint8, seed int64) bool {
		n := int(nRaw%5000) + 1
		theta := float64(thetaRaw%100) / 100 // [0, 0.99]
		g := New(n, theta)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			r := g.Next(rng)
			if r < 0 || r >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNext(b *testing.B) {
	g := New(1_000_000, 0.8)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next(rng)
	}
}

func BenchmarkNew1M(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = New(1_000_000, 0.8)
	}
}
