// Package zipf implements the Zipfian random number generator of Gray,
// Sundaresan, Englert, Baclawski and Weinberger, "Quickly Generating
// Billion-Record Synthetic Databases" (SIGMOD 1994) — the generator the paper
// cites as [10] for its synthetic update traces.
//
// A Generator over n items with parameter theta draws item ranks r in [0, n)
// with probability proportional to 1/(r+1)^theta. theta = 0 degenerates to
// the uniform distribution; theta must be < 1 (the paper uses 0…0.99).
package zipf

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator draws Zipf-distributed ranks using Gray et al.'s constant-time
// inverse-transform approximation.
type Generator struct {
	n     int
	theta float64

	// Precomputed constants of the Gray et al. method.
	alpha  float64
	zetan  float64
	eta    float64
	thresh float64 // 1 + 0.5^theta
}

// New returns a Generator over n items with skew theta. It panics if n <= 0
// or theta is outside [0, 1).
func New(n int, theta float64) *Generator {
	if n <= 0 {
		panic(fmt.Sprintf("zipf: n must be positive, got %d", n))
	}
	if theta < 0 || theta >= 1 {
		panic(fmt.Sprintf("zipf: theta must be in [0,1), got %v", theta))
	}
	g := &Generator{n: n, theta: theta}
	if theta == 0 {
		return g
	}
	g.zetan = zeta(n, theta)
	g.alpha = 1 / (1 - theta)
	zeta2 := zeta(2, theta)
	g.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/g.zetan)
	g.thresh = 1 + math.Pow(0.5, theta)
	return g
}

// zeta returns the generalized harmonic number H_{n,theta} = Σ 1/i^theta.
// For the sizes the paper uses (n ≤ 10^7) the direct sum is computed once
// per generator and is fast enough; larger n fall back to an integral
// approximation accurate to well under 0.1%.
func zeta(n int, theta float64) float64 {
	const direct = 20_000_000
	if n <= direct {
		sum := 0.0
		for i := 1; i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	// Euler–Maclaurin: Σ_{i=1..n} i^-θ ≈ Σ_{i=1..m} i^-θ +
	// (n^{1-θ} - m^{1-θ})/(1-θ) + (n^-θ - m^-θ)/2.
	const m = 1_000_000
	sum := zeta(m, theta)
	oneMinus := 1 - theta
	sum += (math.Pow(float64(n), oneMinus) - math.Pow(float64(m), oneMinus)) / oneMinus
	sum += (math.Pow(float64(n), -theta) - math.Pow(float64(m), -theta)) / 2
	return sum
}

// N returns the number of items.
func (g *Generator) N() int { return g.n }

// Theta returns the skew parameter.
func (g *Generator) Theta() float64 { return g.theta }

// Next draws the next rank in [0, n) using rng. Rank 0 is the hottest item.
func (g *Generator) Next(rng *rand.Rand) int {
	if g.theta == 0 {
		return rng.Intn(g.n)
	}
	u := rng.Float64()
	uz := u * g.zetan
	if uz < 1 {
		return 0
	}
	if uz < g.thresh {
		return 1
	}
	r := int(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alpha))
	if r >= g.n { // guard against floating-point overshoot
		r = g.n - 1
	}
	return r
}

// Probability returns the exact probability of rank r under the Zipf
// distribution (not the approximation used for sampling). It is O(n) on the
// first call per generator for theta > 0 and is intended for tests.
func (g *Generator) Probability(r int) float64 {
	if r < 0 || r >= g.n {
		return 0
	}
	if g.theta == 0 {
		return 1 / float64(g.n)
	}
	return 1 / (math.Pow(float64(r+1), g.theta) * g.zetan)
}
