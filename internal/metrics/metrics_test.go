package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesAdd(t *testing.T) {
	var s Series
	s.Name = "naive"
	s.Add(1, 2)
	s.Add(3, 4)
	if len(s.Points) != 2 || s.Points[1] != (Point{3, 4}) {
		t.Errorf("unexpected points: %+v", s.Points)
	}
}

func TestFigureTableAlignsSeries(t *testing.T) {
	f := Figure{Title: "Fig X", XLabel: "updates", YLabel: "sec"}
	a := Series{Name: "A"}
	a.Add(1000, 0.5)
	a.Add(2000, 0.6)
	b := Series{Name: "B"}
	b.Add(2000, 0.7)
	b.Add(4000, 0.8)
	f.Add(a)
	f.Add(b)
	out := f.Table().String()
	for _, want := range []string{"updates", "A", "B", "1000", "2000", "4000", "0.5", "0.7", "0.8"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + separator + 3 x-values
	if len(lines) != 5 {
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestFigureTableSortsX(t *testing.T) {
	f := Figure{XLabel: "x"}
	s := Series{Name: "s"}
	s.Add(30, 1)
	s.Add(10, 2)
	s.Add(20, 3)
	f.Add(s)
	out := f.Table().String()
	i10 := strings.Index(out, "10")
	i20 := strings.Index(out, "20")
	i30 := strings.Index(out, "30")
	if !(i10 < i20 && i20 < i30) {
		t.Errorf("x values not sorted:\n%s", out)
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{XLabel: "x,label"} // needs escaping
	s := Series{Name: `quo"te`}
	s.Add(1, 2)
	f.Add(s)
	csv := f.CSV()
	if !strings.HasPrefix(csv, `"x,label","quo""te"`) {
		t.Errorf("CSV header not escaped: %q", csv)
	}
	if !strings.Contains(csv, "\n1,2\n") {
		t.Errorf("CSV data row missing: %q", csv)
	}
}

func TestFigureStringIncludesTitle(t *testing.T) {
	f := Figure{Title: "Overhead vs updates", YLabel: "sec"}
	if out := f.String(); !strings.Contains(out, "Overhead vs updates") {
		t.Errorf("missing title: %q", out)
	}
}

func TestTextTableAlignment(t *testing.T) {
	tt := NewTextTable()
	tt.Header("method", "time")
	tt.Row("Naive-Snapshot", "0.68")
	tt.Row("COU", "0.7")
	out := tt.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator width mismatch:\n%s", out)
	}
	// Ragged rows must not panic.
	tt.Row("only-one-cell")
	_ = tt.String()
}

func TestTextTableRowf(t *testing.T) {
	tt := NewTextTable()
	tt.Rowf("x", 42, 1.5)
	out := tt.String()
	for _, want := range []string{"x", "42", "1.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("Rowf output missing %q", want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("bad summary: %+v", s)
	}
	if s.Mean != 2.5 {
		t.Errorf("Mean = %v, want 2.5", s.Mean)
	}
	if s.P50 != 2.5 {
		t.Errorf("P50 = %v, want 2.5", s.P50)
	}
	if z := Summarize(nil); z.Count != 0 || z.Mean != 0 {
		t.Errorf("empty summary: %+v", z)
	}
	one := Summarize([]float64{7})
	if one.P99 != 7 || one.P50 != 7 || one.Mean != 7 {
		t.Errorf("single-element summary: %+v", one)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestQuantileBounds(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
		}
		s := Summarize(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.P50 >= s.Min && s.P50 <= s.Max &&
			s.P95 >= s.P50 && s.P99 >= s.P95 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{0, "0s"},
		{1.5e-9, "1.5ns"},
		{2.5e-6, "2.50µs"},
		{0.017, "17.00ms"},
		{0.684, "684.00ms"},
		{1.4, "1.400s"},
	}
	for _, tc := range cases {
		if got := FormatDuration(tc.sec); got != tc.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", tc.sec, got, tc.want)
		}
	}
}

func TestGnuplotScript(t *testing.T) {
	f := Figure{Title: "Figure 2 (full): overhead", XLabel: "updates", YLabel: "sec"}
	a := Series{Name: "Naive-Snapshot"}
	a.Add(1000, 0.00085)
	a.Add(256000, 0.001)
	f.Add(a)
	out := f.Gnuplot(true, true)
	for _, want := range []string{
		"set logscale x", "set logscale y",
		`set xlabel "updates"`, `set ylabel "sec"`,
		"$data0 << EOD", "1000 0.00085", "256000 0.001",
		`title "Naive-Snapshot"`, "with linespoints",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gnuplot script missing %q:\n%s", want, out)
		}
	}
	linear := f.Gnuplot(false, false)
	if strings.Contains(linear, "logscale") {
		t.Error("linear axes still set logscale")
	}
}

func TestSanitizeFile(t *testing.T) {
	cases := map[string]string{
		"Figure 2 (full): overhead": "figure-2-full-overhead",
		"simple":                    "simple",
		"  ":                        "",
		"A/B:C":                     "a-b-c",
	}
	for in, want := range cases {
		if got := sanitizeFile(in); got != want {
			t.Errorf("sanitizeFile(%q) = %q, want %q", in, got, want)
		}
	}
}
