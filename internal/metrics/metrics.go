// Package metrics provides the small reporting toolkit the experiment
// harness uses to regenerate the paper's figures and tables as text: labeled
// series (one line per algorithm), aligned text tables, CSV emission, and
// summary statistics over per-tick measurements.
//
// The package is scoped to offline experiment figure rendering: it runs
// after a benchmark finishes and formats what the harness measured. Live
// runtime observability — counters, gauges, histograms and spans scraped
// from a running process — is internal/telemetry's job; the experiment
// harness cross-checks the two against each other (a bench's measured walls
// must agree with the telemetry the instrumented code recorded).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points — one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Figure is a set of series sharing axes — one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Add appends a series to the figure.
func (f *Figure) Add(s Series) { f.Series = append(f.Series, s) }

// Table renders the figure as an aligned text table with one row per x value
// and one column per series, in the style the paper's plots report.
func (f *Figure) Table() *TextTable {
	t := NewTextTable()
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	t.Header(header...)
	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := []string{formatNum(x)}
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = formatNum(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		t.Row(row...)
	}
	return t
}

// CSV renders the figure as comma-separated values with a header line.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	t := f.Table()
	for _, row := range t.rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(cell))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the figure with its title.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (y: %s)\n", f.Title, f.YLabel)
	b.WriteString(f.Table().String())
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func formatNum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 && v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000 && v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 0.01:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// TextTable is a simple aligned text table.
type TextTable struct {
	header []string
	rows   [][]string
}

// NewTextTable returns an empty table.
func NewTextTable() *TextTable { return &TextTable{} }

// Header sets the column headers.
func (t *TextTable) Header(cols ...string) { t.header = cols }

// Row appends a row.
func (t *TextTable) Row(cells ...string) { t.rows = append(t.rows, cells) }

// Rowf appends a row built with Sprintf on each (format, value) pair.
func (t *TextTable) Rowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *TextTable) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.header != nil {
		measure(t.header)
	}
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	if t.header != nil {
		writeRow(t.header)
		for i := 0; i < cols; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", widths[i]))
		}
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Summary holds order statistics of a sample.
type Summary struct {
	Count          int
	Mean, Min, Max float64
	P50, P95, P99  float64
}

// Summarize computes summary statistics. An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   quantile(sorted, 0.50),
		P95:   quantile(sorted, 0.95),
		P99:   quantile(sorted, 0.99),
	}
}

// quantile returns the q-quantile of a sorted sample using the
// nearest-rank-with-interpolation method.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FormatDuration renders seconds with an appropriate unit for reports.
func FormatDuration(sec float64) string {
	abs := math.Abs(sec)
	switch {
	case sec == 0:
		return "0s"
	case abs < 1e-6:
		return fmt.Sprintf("%.1fns", sec*1e9)
	case abs < 1e-3:
		return fmt.Sprintf("%.2fµs", sec*1e6)
	case abs < 1:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.3fs", sec)
	}
}
