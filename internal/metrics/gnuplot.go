package metrics

import (
	"fmt"
	"strings"
)

// Gnuplot renders the figure as a self-contained gnuplot script with inline
// data blocks, so `gnuplot fig.plt` reproduces the paper-style plot. logX
// and logY select logarithmic axes (the paper's Figure 2 and 6 use
// log-log).
func (f *Figure) Gnuplot(logX, logY bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Title)
	b.WriteString("set terminal pngcairo size 900,600\n")
	fmt.Fprintf(&b, "set output %q\n", sanitizeFile(f.Title)+".png")
	fmt.Fprintf(&b, "set title %q\n", f.Title)
	fmt.Fprintf(&b, "set xlabel %q\n", f.XLabel)
	fmt.Fprintf(&b, "set ylabel %q\n", f.YLabel)
	if logX {
		b.WriteString("set logscale x\n")
	}
	if logY {
		b.WriteString("set logscale y\n")
	}
	b.WriteString("set key outside right\n")
	for i, s := range f.Series {
		fmt.Fprintf(&b, "$data%d << EOD\n", i)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%g %g\n", p.X, p.Y)
		}
		b.WriteString("EOD\n")
	}
	b.WriteString("plot ")
	for i, s := range f.Series {
		if i > 0 {
			b.WriteString(", \\\n     ")
		}
		fmt.Fprintf(&b, "$data%d with linespoints title %q", i, s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}

// sanitizeFile turns a title into a safe file stem.
func sanitizeFile(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ', r == ':', r == '/', r == '(', r == ')':
			if n := b.Len(); n > 0 && b.String()[n-1] != '-' {
				b.WriteByte('-')
			}
		}
	}
	return strings.Trim(b.String(), "-")
}
