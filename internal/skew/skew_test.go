package skew

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/gamestate"
	"repro/internal/wal"
)

func testTable() gamestate.Table {
	// 512 objects: Uniform's minimum 64-object span still leaves room for a
	// genuine 4-node split.
	return gamestate.Table{Rows: 8192, Cols: 8, CellSize: 4, ObjSize: 512}
}

// worldBatch is the test workload: a pure function of the tick, so a resumed
// coordinator can re-dispatch rolled-back ticks identically.
func worldBatch(tab gamestate.Table, t uint64, perTick int) []wal.Update {
	cells := tab.NumObjects() * tab.CellsPerObject()
	rng := rand.New(rand.NewSource(int64(t)*7919 + 17))
	out := make([]wal.Update, perTick)
	for k := range out {
		out[k] = wal.Update{Cell: uint32(rng.Intn(cells)), Value: uint32(t)<<20 | uint32(k)}
	}
	return out
}

// testEmit is the cross-partition action source: pure in (node, tick), with
// values that encode their provenance so the exactly-once scan can key on
// them.
func testEmit(tab gamestate.Table, perEmit int) EmitFunc {
	cells := tab.NumObjects() * tab.CellsPerObject()
	return func(node int, tick uint64) []wal.Update {
		rng := rand.New(rand.NewSource(int64(node)*1_000_003 + int64(tick)*31 + 5))
		out := make([]wal.Update, perEmit)
		for k := range out {
			out[k] = wal.Update{Cell: uint32(rng.Intn(cells)), Value: uint32(tick)<<16 | uint32(node)<<8 | uint32(k)}
		}
		return out
	}
}

// serialReference runs the same workload on a single never-crashed serial
// engine: world batch first, then the emissions whose delivery lands on the
// tick, in origin order — the exact order the skew cluster's sorted delivery
// guarantees.
func serialReference(t *testing.T, tab gamestate.Table, nodes int, window uint64,
	total uint64, perTick int, emit EmitFunc) []byte {
	t.Helper()
	ref, err := engine.Open(engine.Options{Table: tab, Mode: engine.ModeNone, InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for tick := uint64(0); tick < total; tick++ {
		batch := worldBatch(tab, tick, perTick)
		if emit != nil && tick >= window+1 {
			origin := tick - window - 1
			for j := 0; j < nodes; j++ {
				batch = append(batch, emit(j, origin)...)
			}
		}
		if err := ref.ApplyTick(batch); err != nil {
			t.Fatal(err)
		}
	}
	return append([]byte(nil), ref.Store().Slab()...)
}

// TestSkewEquivalence: a bounded-skew world with live cross-partition
// messages and worker-side staggered checkpoints must end byte-identical to
// the serial reference, at 1, 2 and 4 nodes.
func TestSkewEquivalence(t *testing.T) {
	tab := testTable()
	const total, perTick, window = 30, 60, 3
	for _, nodes := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			emit := testEmit(tab, 3)
			c, err := New(Options{
				Table: tab, Dir: t.TempDir(), Mode: engine.ModeCopyOnUpdate,
				Nodes: nodes, MaxSkew: window, CheckpointEvery: 8, Emit: emit,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			n := c.Map().NumNodes
			for tick := uint64(0); tick < total; tick++ {
				if err := c.Tick(worldBatch(tab, tick, perTick)); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Join(); err != nil {
				t.Fatal(err)
			}
			want := serialReference(t, tab, n, window, total, perTick, emit)
			got := make([]byte, tab.StateBytes())
			if err := c.ReadWorld(got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("skew world diverges from serial reference")
			}
			// The worker-side schedule must have produced genuinely staggered
			// cuts: recorded at different ticks when there is more than one node.
			man, err := cluster.ReadManifest(c.opts.Dir)
			if err != nil {
				t.Fatal(err)
			}
			if man.Coordination != cluster.CoordinationSkew || man.MaxSkew != window {
				t.Fatalf("manifest coordination %q maxskew %d", man.Coordination, man.MaxSkew)
			}
			if len(man.NodeCuts) != n {
				t.Fatalf("%d node cuts, want %d", len(man.NodeCuts), n)
			}
			if n > 1 {
				distinct := map[uint64]bool{}
				for _, cut := range man.NodeCuts {
					distinct[cut.AsOfTick] = true
				}
				if len(distinct) < 2 {
					t.Fatalf("cuts not staggered: %+v", man.NodeCuts)
				}
			}
		})
	}
}

// walRecords reads one WAL's full logical record stream.
type walRecord struct {
	tick    uint64
	payload []byte
}

func walRecords(t *testing.T, dir string) []walRecord {
	t.Helper()
	r, err := wal.NewReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []walRecord
	for {
		tick, payload, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, walRecord{tick: tick, payload: payload})
	}
}

// TestMaxSkewZeroMatchesBarrier: with MaxSkew 0 and no messages, the skew
// cluster degrades to exact barrier semantics — every node's WAL is
// byte-identical to the lock-step barrier cluster's, record stream and
// segment files both. ModeNone keeps the full history deterministic (the
// CoU checkpointer rotates and prunes segments at timing-dependent ticks,
// which perturbs retention, not semantics; state identity under CoU is
// TestSkewEquivalence's job).
func TestMaxSkewZeroMatchesBarrier(t *testing.T) {
	tab := testTable()
	const total, perTick, nodes = 12, 50, 2
	for _, mode := range []engine.Mode{engine.ModeNone} {
		t.Run(fmt.Sprintf("mode=%v", mode), func(t *testing.T) {
			skewDir, barDir := t.TempDir(), t.TempDir()
			sc, err := New(Options{Table: tab, Dir: skewDir, Mode: mode, Nodes: nodes, MaxSkew: 0})
			if err != nil {
				t.Fatal(err)
			}
			bc, err := cluster.New(cluster.Options{Table: tab, Dir: barDir, Mode: mode, Nodes: nodes})
			if err != nil {
				t.Fatal(err)
			}
			for tick := uint64(0); tick < total; tick++ {
				batch := worldBatch(tab, tick, perTick)
				if err := sc.Tick(batch); err != nil {
					t.Fatal(err)
				}
				if err := bc.Tick(batch); err != nil {
					t.Fatal(err)
				}
			}
			sWals := make([]string, nodes)
			bWals := make([]string, nodes)
			for i := 0; i < nodes; i++ {
				sWals[i] = sc.Nodes()[i].E.WALDir()
				bWals[i] = bc.Nodes()[i].E.WALDir()
			}
			if err := sc.Close(); err != nil {
				t.Fatal(err)
			}
			if err := bc.Close(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < nodes; i++ {
				sRecs := walRecords(t, sWals[i])
				bRecs := walRecords(t, bWals[i])
				if len(sRecs) != len(bRecs) || len(sRecs) == 0 {
					t.Fatalf("node %d: %d skew records vs %d barrier", i, len(sRecs), len(bRecs))
				}
				for k := range sRecs {
					if sRecs[k].tick != bRecs[k].tick || !bytes.Equal(sRecs[k].payload, bRecs[k].payload) {
						t.Fatalf("node %d record %d: (tick %d, %d bytes) vs (tick %d, %d bytes)",
							i, k, sRecs[k].tick, len(sRecs[k].payload), bRecs[k].tick, len(bRecs[k].payload))
					}
				}
				if mode != engine.ModeNone {
					continue
				}
				sEnts, err := os.ReadDir(sWals[i])
				if err != nil {
					t.Fatal(err)
				}
				bEnts, err := os.ReadDir(bWals[i])
				if err != nil {
					t.Fatal(err)
				}
				if len(sEnts) != len(bEnts) || len(sEnts) == 0 {
					t.Fatalf("node %d: %d skew segments vs %d barrier", i, len(sEnts), len(bEnts))
				}
				for k := range sEnts {
					if sEnts[k].Name() != bEnts[k].Name() {
						t.Fatalf("node %d: segment %s vs %s", i, sEnts[k].Name(), bEnts[k].Name())
					}
					sb, err := os.ReadFile(filepath.Join(sWals[i], sEnts[k].Name()))
					if err != nil {
						t.Fatal(err)
					}
					bb, err := os.ReadFile(filepath.Join(bWals[i], bEnts[k].Name()))
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(sb, bb) {
						t.Fatalf("node %d: WAL segment %s differs between skew(W=0) and barrier", i, sEnts[k].Name())
					}
				}
			}
		})
	}
}

// TestStragglerBlocksOnlyDependents: a node stalled at tick T must not stop
// dispatch until the window is exhausted — the other node runs ahead to the
// window edge, and only the tick past the edge blocks.
func TestStragglerBlocksOnlyDependents(t *testing.T) {
	tab := testTable()
	const window = 3
	gate := make(chan struct{})
	entered := make(chan struct{})
	c, err := New(Options{
		Table: tab, Dir: t.TempDir(), Mode: engine.ModeCopyOnUpdate, Nodes: 2, MaxSkew: window,
		BeforeApply: func(node int, tick uint64) {
			if node == 0 && tick == 5 {
				close(entered)
				<-gate
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Dispatching tick D needs every node past D-1-window; with node 0 stuck
	// applying tick 5, ticks through 5+window dispatch freely.
	for tick := uint64(0); tick <= 5+window; tick++ {
		if err := c.Tick(worldBatch(tab, tick, 20)); err != nil {
			t.Fatal(err)
		}
	}
	<-entered
	deadline := time.Now().Add(5 * time.Second)
	for c.AppliedTick(1) != 5+window+1 {
		if time.Now().After(deadline) {
			t.Fatalf("node 1 applied %d ticks, want %d (window not open)", c.AppliedTick(1), 5+window+1)
		}
		time.Sleep(time.Millisecond)
	}
	if got := c.AppliedTick(0); got != 5 {
		t.Fatalf("straggler applied %d ticks, want 5", got)
	}

	// The first tick past the window edge must block on the straggler.
	blocked := make(chan error, 1)
	go func() { blocked <- c.Tick(worldBatch(tab, 5+window+1, 20)) }()
	select {
	case <-blocked:
		t.Fatal("tick past the window edge dispatched despite the straggler")
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	if c.WindowWait() == 0 {
		t.Fatal("window wait not accounted")
	}
	want := serialReference(t, tab, c.Map().NumNodes, window, 5+window+2, 20, nil)
	got := make([]byte, tab.StateBytes())
	if err := c.ReadWorld(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("straggler world diverges from serial reference")
	}
}

// TestCrashRecoverExactlyOnce: crash a skewed world with messages in flight,
// recover it from the reconstructed cut, finish the run, and require (a)
// byte identity with a never-crashed serial run and (b) every message record
// appearing in its destination's WAL exactly once.
func TestCrashRecoverExactlyOnce(t *testing.T) {
	tab := testTable()
	const crashAt, total, perTick, window = 14, 20, 40, 2
	for _, nodes := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			dir := t.TempDir()
			emit := testEmit(tab, 2)
			// ModeNone: no images, so the full WAL history survives for the
			// exactly-once scan (CoU's continuous checkpointer prunes sealed
			// segments) and recovery is pure message-logging replay.
			c, err := New(Options{
				Table: tab, Dir: dir, Mode: engine.ModeNone,
				Nodes: nodes, MaxSkew: window, Emit: emit, SyncEveryTick: true,
				// Skew the crash point: the last node lags behind the rest.
				BeforeApply: func(node int, tick uint64) {
					if node == nodes-1 && tick >= 8 {
						time.Sleep(2 * time.Millisecond)
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			n := c.Map().NumNodes
			for tick := uint64(0); tick < crashAt; tick++ {
				if err := c.Tick(worldBatch(tab, tick, perTick)); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Crash(); err != nil {
				t.Fatal(err)
			}

			rc, wr, err := Recover(dir, Options{Mode: engine.ModeNone, Emit: emit, SyncEveryTick: true})
			if err != nil {
				t.Fatal(err)
			}
			defer rc.Close()
			if rc.Map().NumNodes != n {
				t.Fatalf("recovered %d nodes, want %d", rc.Map().NumNodes, n)
			}
			if wr.WorldTick != wr.Cut+1 || wr.WorldTick > crashAt {
				t.Fatalf("recovered to tick %d (cut %d), crashed after dispatching %d", wr.WorldTick, wr.Cut, crashAt)
			}
			for tick := wr.WorldTick; tick < total; tick++ {
				if err := rc.Tick(worldBatch(tab, tick, perTick)); err != nil {
					t.Fatal(err)
				}
			}
			if err := rc.Join(); err != nil {
				t.Fatal(err)
			}
			want := serialReference(t, tab, n, window, total, perTick, emit)
			got := make([]byte, tab.StateBytes())
			if err := rc.ReadWorld(got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("crash-recovered world diverges from never-crashed serial reference")
			}

			// Exactly-once: scan every node's WAL for message records and
			// check each (origin, originTick) pair lands in its owner's log
			// exactly once — no loss, no double replay across the crash.
			walDirs := make([]string, n)
			for i := 0; i < n; i++ {
				walDirs[i] = rc.Nodes()[i].E.WALDir()
			}
			if err := rc.Close(); err != nil {
				t.Fatal(err)
			}
			type key struct {
				node   int
				origin int32
				tick   uint64
			}
			seen := map[key]int{}
			for i := 0; i < n; i++ {
				r, err := wal.NewReader(walDirs[i])
				if err != nil {
					t.Fatal(err)
				}
				for {
					_, payload, err := r.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Fatal(err)
					}
					env, err := engine.DecodeEnvelopeRecord(payload)
					if err != nil {
						t.Fatal(err)
					}
					if env.Origin >= 0 {
						seen[key{node: i, origin: env.Origin, tick: env.OriginTick}]++
					}
				}
				r.Close()
			}
			for k, count := range seen {
				if count != 1 {
					t.Fatalf("message (origin %d, tick %d) appears %d times in node %d's WAL",
						k.origin, k.tick, count, k.node)
				}
			}
			// Completeness: every emission with a delivery tick inside the run
			// must be present (origin ticks 0..total-window-2).
			cellsPerObj := uint32(tab.CellsPerObject())
			m := rc.Map()
			for j := 0; j < n; j++ {
				for tick := uint64(0); tick+window+1 < total; tick++ {
					for _, u := range emit(j, tick) {
						dest := m.Owner(int(u.Cell / cellsPerObj))
						if seen[key{node: dest, origin: int32(j), tick: tick}] != 1 {
							t.Fatalf("emission (origin %d, tick %d) missing from node %d's WAL", j, tick, dest)
						}
					}
				}
			}
		})
	}
}

// TestCrashRecoverWithStaggeredCuts: the same crash/recover identity with
// worker-side checkpoints on, so recovery starts from genuinely staggered
// per-node images and rolls each node forward out of the inbox store.
func TestCrashRecoverWithStaggeredCuts(t *testing.T) {
	tab := testTable()
	const crashAt, total, perTick, window = 17, 24, 40, 3
	dir := t.TempDir()
	emit := testEmit(tab, 2)
	opts := Options{
		Table: tab, Dir: dir, Mode: engine.ModeCopyOnUpdate,
		Nodes: 2, MaxSkew: window, CheckpointEvery: 6, Emit: emit, SyncEveryTick: true,
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	n := c.Map().NumNodes
	for tick := uint64(0); tick < crashAt; tick++ {
		if err := c.Tick(worldBatch(tab, tick, perTick)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	rc, wr, err := Recover(dir, Options{Mode: engine.ModeCopyOnUpdate, CheckpointEvery: 6, Emit: emit, SyncEveryTick: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if wr.WorldTick == 0 {
		t.Fatal("recovered to a fresh world")
	}
	for tick := wr.WorldTick; tick < total; tick++ {
		if err := rc.Tick(worldBatch(tab, tick, perTick)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rc.Join(); err != nil {
		t.Fatal(err)
	}
	want := serialReference(t, tab, n, window, total, perTick, emit)
	got := make([]byte, tab.StateBytes())
	if err := rc.ReadWorld(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered world diverges from serial reference")
	}
}

// TestTornRefusal: an inbox that lost its records no longer bounds the
// world; recovery must refuse with a typed TornError instead of resuming.
func TestTornRefusal(t *testing.T) {
	tab := testTable()
	dir := t.TempDir()
	c, err := New(Options{Table: tab, Dir: dir, Mode: engine.ModeCopyOnUpdate, Nodes: 2, MaxSkew: 2})
	if err != nil {
		t.Fatal(err)
	}
	for tick := uint64(0); tick < 8; tick++ {
		if err := c.Tick(worldBatch(tab, tick, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate total inbox loss on node 0.
	if err := os.RemoveAll(inboxDir(dir, 0)); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(inboxDir(dir, 0), 0o755); err != nil {
		t.Fatal(err)
	}
	_, _, err = Recover(dir, Options{Mode: engine.ModeCopyOnUpdate})
	var torn *TornError
	if !errors.As(err, &torn) {
		t.Fatalf("recovery of a world with a lost inbox returned %v, want *TornError", err)
	}
	if torn.Tick != 8 || torn.Cut != 0 {
		t.Fatalf("torn error %+v, want tick 8 against cut 0", torn)
	}
}

// TestManifestRefusals: each cluster flavor must refuse the other's
// manifest with its typed error.
func TestManifestRefusals(t *testing.T) {
	tab := testTable()

	skewDir := t.TempDir()
	sc, err := New(Options{Table: tab, Dir: skewDir, Mode: engine.ModeCopyOnUpdate, Nodes: 2, MaxSkew: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Tick(worldBatch(tab, 0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cluster.Recover(skewDir, cluster.Options{Mode: engine.ModeCopyOnUpdate}); !errors.Is(err, cluster.ErrSkewManifest) {
		t.Fatalf("cluster.Recover of a skew world returned %v, want ErrSkewManifest", err)
	}

	barDir := t.TempDir()
	bc, err := cluster.New(cluster.Options{Table: tab, Dir: barDir, Mode: engine.ModeCopyOnUpdate, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.Tick(worldBatch(tab, 0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(barDir, Options{Mode: engine.ModeCopyOnUpdate}); !errors.Is(err, ErrNotSkew) {
		t.Fatalf("skew.Recover of a barrier world returned %v, want ErrNotSkew", err)
	}
}
