// Package skew replaces the cluster's lock-step tick barrier with
// bounded-skew ticking: each node runs ahead of the slowest node by up to
// Options.MaxSkew ticks, so one slow partition no longer gates every tick of
// every other partition — the paper's own Section 8 worry about multi-server
// throughput, and the coordinated-vs-uncoordinated checkpoint trade-off
// surveyed by Tuli & Kumar.
//
// Three mechanisms replace the three jobs the barrier did:
//
//   - Tick dispatch. The coordinator may dispatch tick D as soon as every
//     node has applied tick D-1-MaxSkew (with MaxSkew 0 this degrades to the
//     exact barrier). Each node applies its dispatched ticks in order on its
//     own worker, so per-node history is identical to the barrier world's —
//     nodes just traverse it at independent rates.
//
//   - Cross-partition actions become messages (message logging). A node
//     applying its tick T may emit updates for objects it does not own
//     (Options.Emit); they are delivered to the owners at tick T+MaxSkew+1 —
//     beyond the skew window, so no destination can have passed that tick —
//     and logged with their origin (node, tick) both in the destination's
//     inbox store and, as a typed recMessage record, in the destination's
//     own WAL when applied.
//
//   - The coordinated cut is replaced by per-node checkpoints plus the
//     logged-message store. Every dispatched envelope is appended to the
//     destination's durable inbox log *before* any node sees the tick, so
//     after a crash the inboxes bound what any node can have applied.
//     Recover reconstructs the consistent cut C = the highest tick present
//     in every inbox, recovers each node from its own (staggered) checkpoint
//     and WAL, rolls laggards forward by replaying their logged inbound
//     envelopes up to C, and regenerates the messages still in flight at the
//     crash. A world recovered at cut C is byte-identical to the barrier
//     world run to C.
//
// The bounded window is also why the classic uncoordinated-checkpoint domino
// effect cannot occur here: a node never needs to roll *back* to find a
// consistent state, because every tick at or below C is fully determined by
// the inbox logs — recovery only ever rolls forward.
package skew

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/gamestate"
	"repro/internal/wal"
)

// EmitFunc produces the cross-partition updates node emits while applying
// tick. It must be a pure function of (node, tick) — like the workload
// scenarios it must not read mutable engine state — because recovery re-runs
// it to regenerate the messages that were still inside the delivery window
// when the world crashed. Updates it returns may target any owner (including
// the emitting node); each is delivered at tick+MaxSkew+1.
type EmitFunc func(node int, tick uint64) []wal.Update

// Options configures a bounded-skew cluster.
type Options struct {
	// Table is the world geometry every node shares.
	Table gamestate.Table
	// Dir is the cluster root: node i lives in Dir/node-i (engine state plus
	// an inbox/ logged-message store), the manifest in Dir/cluster.json.
	Dir string
	// Mode is every node's checkpoint method.
	Mode engine.Mode
	// Nodes is the requested node count, folded exactly like the barrier
	// cluster's (power-of-two spans; the effective count is len(Nodes())).
	Nodes int
	// Shards is each node's engine shard count (default 1).
	Shards int
	// MaxSkew is the window W: the fastest node may run ahead of the slowest
	// by at most W ticks. 0 reproduces the lock-step barrier exactly.
	MaxSkew int
	// DiskBytesPerSec throttles each node's backup devices.
	DiskBytesPerSec float64
	// SyncEveryTick fsyncs each node's engine WAL at every tick and each
	// inbox before its tick is dispatched. With it, the inbox-bounds-the-
	// world invariant recovery relies on holds across hard kills; without
	// it, only across clean crashes (Crash/Close), and a hard kill that
	// loses an inbox tail surfaces as a typed *TornError refusal.
	SyncEveryTick bool
	// CheckpointEvery, when > 0, schedules uncoordinated per-node
	// checkpoints from the node workers: node i cuts after applying tick T
	// when (T+1+offset_i) is a multiple of CheckpointEvery, with offsets
	// staggered across nodes so cuts never line up. The cut stalls only its
	// own node; the window absorbs the stall instead of charging it to
	// every partition the way a coordinated cut does.
	CheckpointEvery int
	// Emit, when non-nil, is the cross-partition action source (see
	// EmitFunc). Recover needs the same function to regenerate in-flight
	// messages.
	Emit EmitFunc
	// BeforeApply, when non-nil, runs on the node's worker immediately
	// before each tick applies — the test hook straggler injection uses.
	BeforeApply func(node int, tick uint64)
	// DeviceFactory overrides how node engines open backup devices (fault
	// injection).
	DeviceFactory func(path string) (disk.Device, error)
}

// Node is one skew-cluster member: a full engine, its place in the world,
// and its durable inbox (the logged-message store).
type Node struct {
	Index int
	Dir   string
	E     *engine.Engine

	inbox *wal.Log
}

// workItem is one dispatched tick on its way to a node worker.
type workItem struct {
	tick uint64
	envs []engine.Envelope
}

// inboxMaint is one node's deferred inbox maintenance after a worker-side
// cut: rotate at the next dispatch boundary, prune below keepFrom.
type inboxMaint struct {
	node     int
	keepFrom uint64
}

// pendingMsg is an emitted cross-partition message waiting for its delivery
// tick.
type pendingMsg struct {
	origin     int
	originTick uint64
	dest       int
	updates    []wal.Update
}

// Cluster is a bounded-skew multi-node world. One coordinating goroutine
// calls Tick; each node applies on its own worker, up to MaxSkew ticks
// behind the newest dispatch. Unlike the barrier cluster, Tick returns as
// soon as the tick is durably logged to every inbox and handed to the
// workers — it blocks only when the skew window is exhausted.
type Cluster struct {
	opts  Options
	table gamestate.Table
	nodes []*Node
	m     cluster.PartitionMap

	cellsPerObj uint32
	tick        uint64 // next tick to dispatch (coordinator-owned)
	window      uint64 // MaxSkew as uint64
	encBuf      []byte
	closed      bool

	work []chan workItem
	wg   sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	applied []uint64 // applied[i] = ticks node i has applied (its next tick)
	errs    []error
	pending map[uint64][]pendingMsg // delivery tick -> messages
	crashed bool

	manMu  sync.Mutex
	cuts   []cluster.NodeCut
	hasCut []bool

	// maint queues inbox rotate+prune work from worker-side cuts for the
	// coordinator. Only the coordinator appends to the inboxes, so only it
	// can rotate them at an exact tick boundary — a worker rotating
	// concurrently with appends would let a just-appended tick slip into the
	// sealed segment that prune's name-based rule then deletes (protected by
	// mu).
	maint       []inboxMaint
	lastRotate  []uint64
	everRotated []bool

	// windowWait accumulates the coordinator's blocked time: window waits in
	// Tick plus drain waits in Join — the skew analogue of the barrier
	// cluster's BarrierWait.
	windowWait time.Duration
}

// New creates a fresh bounded-skew cluster: N empty node directories with
// engine state and inbox store under opts.Dir, a uniform partition map, and
// the skew manifest.
func New(opts Options) (*Cluster, error) {
	if err := opts.Table.Validate(); err != nil {
		return nil, err
	}
	if opts.Dir == "" {
		return nil, errors.New("skew: Dir required")
	}
	if opts.MaxSkew < 0 {
		return nil, errors.New("skew: MaxSkew must be >= 0")
	}
	m := cluster.Uniform(opts.Table.NumObjects(), opts.Nodes)
	c, err := build(opts, m, 0, nil, func(i int, dir string) (*engine.Engine, error) {
		return engine.Open(nodeEngineOptions(opts, dir))
	})
	if err != nil {
		return nil, err
	}
	if err := c.writeManifest(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// nodeEngineOptions is the per-node engine configuration.
func nodeEngineOptions(opts Options, dir string) engine.Options {
	shards := opts.Shards
	if shards <= 0 {
		shards = 1
	}
	return engine.Options{
		Table: opts.Table, Dir: dir, Mode: opts.Mode, Shards: shards,
		DiskBytesPerSec: opts.DiskBytesPerSec, SyncEveryTick: opts.SyncEveryTick,
		DeviceFactory: opts.DeviceFactory,
	}
}

// inboxDir returns node i's inbox store directory under a cluster root.
func inboxDir(root string, i int) string {
	return filepath.Join(cluster.NodeDir(root, i), "inbox")
}

// build assembles a Cluster around an open function, one node per
// partition-map member, starting the per-node apply workers.
func build(opts Options, m cluster.PartitionMap, tick uint64, cuts []cluster.NodeCut,
	open func(i int, dir string) (*engine.Engine, error)) (*Cluster, error) {
	c := &Cluster{
		opts:        opts,
		table:       opts.Table,
		m:           m,
		cellsPerObj: uint32(opts.Table.CellsPerObject()),
		tick:        tick,
		window:      uint64(opts.MaxSkew),
		work:        make([]chan workItem, m.NumNodes),
		applied:     make([]uint64, m.NumNodes),
		errs:        make([]error, m.NumNodes),
		pending:     make(map[uint64][]pendingMsg),
		cuts:        make([]cluster.NodeCut, m.NumNodes),
		hasCut:      make([]bool, m.NumNodes),
		lastRotate:  make([]uint64, m.NumNodes),
		everRotated: make([]bool, m.NumNodes),
	}
	c.cond = sync.NewCond(&c.mu)
	for _, cut := range cuts {
		if cut.Node >= 0 && cut.Node < m.NumNodes {
			c.cuts[cut.Node] = cut
			c.hasCut[cut.Node] = true
		}
	}
	for i := 0; i < m.NumNodes; i++ {
		dir := cluster.NodeDir(opts.Dir, i)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			c.Close()
			return nil, fmt.Errorf("skew: %w", err)
		}
		e, err := open(i, dir)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("skew: node %d: %w", i, err)
		}
		c.nodes = append(c.nodes, &Node{Index: i, Dir: dir, E: e})
		inbox, err := wal.Open(inboxDir(opts.Dir, i))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("skew: node %d inbox: %w", i, err)
		}
		c.nodes[i].inbox = inbox
		c.applied[i] = tick
	}
	for i := range c.work {
		// Capacity MaxSkew+1: after the window wait admits dispatch of tick
		// D, a node can have at most MaxSkew dispatched-but-unapplied ticks
		// queued, so the send below never blocks the coordinator.
		ch := make(chan workItem, opts.MaxSkew+1)
		c.work[i] = ch
		c.wg.Add(1)
		go c.worker(i, ch)
	}
	return c, nil
}

// worker is node i's apply loop: ticks apply strictly in dispatch order, and
// each completion is published under the mutex so the coordinator's window
// wait can make progress.
func (c *Cluster) worker(i int, ch <-chan workItem) {
	defer c.wg.Done()
	n := c.nodes[i]
	for item := range ch {
		c.mu.Lock()
		dead := c.crashed || c.errs[i] != nil
		c.mu.Unlock()
		if dead {
			continue // drain: a crashed or failed node drops its queue
		}
		if c.opts.BeforeApply != nil {
			c.opts.BeforeApply(i, item.tick)
		}
		err := n.E.ApplyTickEnvelopes(item.envs)
		if err == nil && c.opts.Emit != nil {
			err = c.emit(i, item.tick)
		}
		if err == nil && c.cutDue(i, item.tick) {
			err = c.cutWorker(i, item.tick)
		}
		c.mu.Lock()
		if err != nil {
			c.errs[i] = fmt.Errorf("skew: node %d tick %d: %w", i, item.tick, err)
		} else {
			c.applied[i] = item.tick + 1
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// emit runs the action source for (node, tick), routes the emitted updates
// by ownership, and queues each destination's batch for delivery at
// tick+MaxSkew+1 — the first tick the window guarantees no node has passed.
func (c *Cluster) emit(node int, tick uint64) error {
	out := c.opts.Emit(node, tick)
	if len(out) == 0 {
		return nil
	}
	deliver := tick + c.window + 1
	perDest := make(map[int][]wal.Update)
	for _, u := range out {
		dest := c.m.Owner(int(u.Cell / c.cellsPerObj))
		perDest[dest] = append(perDest[dest], u)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for dest := 0; dest < len(c.nodes); dest++ {
		if upds, ok := perDest[dest]; ok {
			c.pending[deliver] = append(c.pending[deliver],
				pendingMsg{origin: node, originTick: tick, dest: dest, updates: upds})
		}
	}
	return nil
}

// cutDue reports whether node i's uncoordinated checkpoint schedule fires
// after applying tick: every CheckpointEvery ticks, offset per node so no
// two nodes cut at the same tick (uncoordinated by construction).
func (c *Cluster) cutDue(i int, tick uint64) bool {
	every := c.opts.CheckpointEvery
	if every <= 0 {
		return false
	}
	offset := uint64(i) * uint64(every) / uint64(len(c.nodes)) % uint64(every)
	return (tick+1+offset)%uint64(every) == 0
}

// checkpointNode checkpoints node i as of asof and records the cut in the
// manifest. The caller must be the engine's mutator at that moment: the
// node's own worker (the scheduled path) or the coordinator with the workers
// drained (CheckpointNodes).
func (c *Cluster) checkpointNode(i int, asof uint64) (engine.CheckpointInfo, error) {
	info, err := c.nodes[i].E.CheckpointAsOf(asof)
	if err != nil {
		return info, err
	}
	c.manMu.Lock()
	c.cuts[i] = cluster.NodeCut{Node: i, Epoch: info.Epoch, AsOfTick: info.AsOfTick}
	c.hasCut[i] = true
	err = c.writeManifest()
	c.manMu.Unlock()
	return info, err
}

// cutWorker is the worker-side scheduled cut: checkpoint now, and leave the
// inbox rotate+prune to the coordinator's next dispatch — rotating here
// would race the coordinator's appends across the segment boundary.
func (c *Cluster) cutWorker(i int, asof uint64) error {
	info, err := c.checkpointNode(i, asof)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.maint = append(c.maint, inboxMaint{node: i, keepFrom: info.AsOfTick + 1})
	c.mu.Unlock()
	return nil
}

// inboxMaintain rotates node i's inbox at the tick boundary next (nothing at
// or past next has been appended yet) and prunes sealed segments the node's
// checkpoint image covers. Roll-forward never replays ticks the image holds,
// so dropping them keeps the inbox scan — and recovery — short. Caller is
// the coordinator, the inbox's only appender.
func (c *Cluster) inboxMaintain(i int, next, keepFrom uint64) error {
	inbox := c.nodes[i].inbox
	if !c.everRotated[i] || c.lastRotate[i] != next {
		if err := inbox.Rotate(next); err != nil {
			return err
		}
		c.lastRotate[i] = next
		c.everRotated[i] = true
	}
	return inbox.Prune(keepFrom)
}

// writeManifest persists the skew manifest (atomic rename). Callers
// serialize via manMu or single-threaded construction.
func (c *Cluster) writeManifest() error {
	man := &cluster.Manifest{
		Table:        c.table,
		Map:          c.m,
		Coordination: cluster.CoordinationSkew,
		MaxSkew:      c.opts.MaxSkew,
	}
	for i, cut := range c.cuts {
		if c.hasCut[i] {
			man.NodeCuts = append(man.NodeCuts, cut)
		}
	}
	return cluster.WriteManifest(c.opts.Dir, man)
}

// firstErrLocked returns the first failed node's error; callers hold mu.
func (c *Cluster) firstErrLocked() error {
	for _, err := range c.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// waitApplied blocks until every node has applied at least min ticks (or a
// node fails), accumulating the blocked time into the window-wait metric.
func (c *Cluster) waitApplied(min uint64) error {
	t0 := time.Now()
	c.mu.Lock()
	defer func() {
		c.mu.Unlock()
		d := time.Since(t0)
		c.windowWait += d
		telWindowWait.ObserveDuration(d)
	}()
	for {
		if err := c.firstErrLocked(); err != nil {
			return err
		}
		slowest := c.applied[0]
		for _, a := range c.applied[1:] {
			if a < slowest {
				slowest = a
			}
		}
		if slowest >= min {
			return nil
		}
		c.cond.Wait()
	}
}

// Tick dispatches one world tick: wait for the skew window to admit it,
// merge in the cross-partition messages due this tick, route the batch by
// ownership, log every envelope to its destination's inbox, and hand the
// tick to the node workers. The inbox appends of *all* nodes complete before
// *any* node sees the tick — the invariant recovery's cut reconstruction
// rests on. With MaxSkew 0 the window wait is the exact tick barrier.
func (c *Cluster) Tick(batch []wal.Update) error {
	if c.closed {
		return errors.New("skew: closed")
	}
	d := c.tick
	// Window: dispatching D requires every node past D-1-MaxSkew.
	if d > c.window {
		if err := c.waitApplied(d - c.window); err != nil {
			return err
		}
	}
	c.mu.Lock()
	due := c.pending[d]
	delete(c.pending, d)
	maint := c.maint
	c.maint = nil
	c.mu.Unlock()
	// Deferred inbox maintenance from worker-side cuts: this is the tick
	// boundary — nothing at or past d is appended yet, so the sealed
	// segments hold exactly the ticks below d and name-based pruning is
	// sound.
	for _, mt := range maint {
		if err := c.inboxMaintain(mt.node, d, mt.keepFrom); err != nil {
			return fmt.Errorf("skew: node %d inbox maintenance: %w", mt.node, err)
		}
	}
	// Workers queue their emissions concurrently, so pending order is
	// scheduling-dependent; delivery order must not be. All messages due at
	// one tick share an origin tick (d-MaxSkew-1), so origin order is total,
	// and it is the order recovery's regeneration reproduces.
	sort.Slice(due, func(a, b int) bool {
		if due[a].originTick != due[b].originTick {
			return due[a].originTick < due[b].originTick
		}
		return due[a].origin < due[b].origin
	})

	// Fresh per-node slices every tick: the workers hold them until the tick
	// applies, possibly MaxSkew ticks from now.
	perNode := cluster.RouteTick(c.m, c.cellsPerObj, batch, make([][]wal.Update, len(c.nodes)))
	envs := make([][]engine.Envelope, len(c.nodes))
	for i := range c.nodes {
		envs[i] = append(envs[i], engine.Envelope{Origin: -1, OriginTick: d, Updates: perNode[i]})
	}
	for _, msg := range due {
		envs[msg.dest] = append(envs[msg.dest], engine.Envelope{
			Origin: int32(msg.origin), OriginTick: msg.originTick, Updates: msg.updates,
		})
	}
	for i, n := range c.nodes {
		for _, env := range envs[i] {
			c.encBuf = engine.EncodeEnvelopeRecord(c.encBuf[:0], env)
			if err := n.inbox.Append(d, c.encBuf); err != nil {
				return fmt.Errorf("skew: node %d inbox: %w", i, err)
			}
		}
		if c.opts.SyncEveryTick {
			if err := n.inbox.Sync(); err != nil {
				return fmt.Errorf("skew: node %d inbox: %w", i, err)
			}
		}
	}
	for i := range c.nodes {
		c.work[i] <- workItem{tick: d, envs: envs[i]}
	}
	c.tick++
	return nil
}

// Join blocks until every dispatched tick has applied on its node — the
// quiescence point ReadWorld, CheckpointNodes and a graceful Close need.
// The drain time counts toward WindowWait (it is coordinator blocked time).
func (c *Cluster) Join() error {
	return c.waitApplied(c.tick)
}

// CheckpointNodes takes one round of per-node cuts with the cluster
// quiesced (it drains first). Each node's image is labeled at its own last
// applied tick — after a drain those coincide, so for cuts that genuinely
// sit at different ticks use the worker-side CheckpointEvery schedule, which
// cuts each node mid-run on its own staggered cadence. Either way the cuts
// are uncoordinated in the sense that matters: recovery never assumes they
// line up, it reconciles whatever the manifest records against the inbox
// logs.
func (c *Cluster) CheckpointNodes() error {
	if c.closed {
		return errors.New("skew: closed")
	}
	if err := c.Join(); err != nil {
		return err
	}
	for i := range c.nodes {
		applied := c.applied[i] // stable: workers are drained
		if applied == 0 {
			continue
		}
		info, err := c.checkpointNode(i, applied-1)
		if err != nil {
			return fmt.Errorf("skew: node %d cut: %w", i, err)
		}
		// Drained, so the coordinator is both mutator and sole appender:
		// inbox maintenance can run inline at the next dispatch tick.
		if err := c.inboxMaintain(i, c.tick, info.AsOfTick+1); err != nil {
			return fmt.Errorf("skew: node %d inbox: %w", i, err)
		}
	}
	return nil
}

// Nodes returns the cluster members.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Map returns the partition map.
func (c *Cluster) Map() cluster.PartitionMap { return c.m }

// Table returns the world geometry.
func (c *Cluster) Table() gamestate.Table { return c.table }

// NextTick returns the tick the next Tick call will dispatch.
func (c *Cluster) NextTick() uint64 { return c.tick }

// MaxSkew returns the window the cluster runs with.
func (c *Cluster) MaxSkew() int { return c.opts.MaxSkew }

// AppliedTick returns the number of ticks node i has applied (its engine's
// next tick). Safe from any goroutine.
func (c *Cluster) AppliedTick(i int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applied[i]
}

// WindowWait returns the cumulative wall time the coordinator has spent
// blocked on node progress: window waits in Tick plus drains in Join. It is
// the skew analogue of the barrier cluster's BarrierWait — the quantity the
// bounded window is supposed to drive to ~zero.
func (c *Cluster) WindowWait() time.Duration { return c.windowWait }

// ReadWorld assembles the world state into dst (StateBytes() long), each
// node contributing the ranges it owns. Call it quiesced (after Join):
// mid-flight the partitions are legitimately at different ticks and the
// merge would be torn.
func (c *Cluster) ReadWorld(dst []byte) error {
	want := int(c.table.StateBytes())
	if len(dst) != want {
		return fmt.Errorf("skew: world buffer %d bytes, want %d", len(dst), want)
	}
	sz := c.table.ObjSize
	for i, n := range c.nodes {
		slab := n.E.Store().Slab()
		for _, r := range c.m.NodeRanges(i) {
			copy(dst[r.Lo*sz:r.Hi*sz], slab[r.Lo*sz:r.Hi*sz])
		}
	}
	return nil
}

// Crash simulates a crash: queued-but-unapplied ticks are dropped (each
// worker abandons its backlog), then logs and engines shut down. The nodes
// end at genuinely different ticks — the state Recover's cut reconstruction
// exists for. The inboxes keep every dispatched tick, so recovery rolls the
// laggards forward to the cut instead of refusing a torn world.
func (c *Cluster) Crash() error {
	return c.shutdown(true)
}

// Close drains every dispatched tick, then shuts the cluster down cleanly.
func (c *Cluster) Close() error {
	return c.shutdown(false)
}

func (c *Cluster) shutdown(crash bool) error {
	if c.closed {
		return nil
	}
	c.closed = true
	var first error
	if crash {
		c.mu.Lock()
		c.crashed = true
		c.mu.Unlock()
	} else if len(c.nodes) == len(c.work) {
		if err := c.Join(); err != nil && first == nil {
			first = err
		}
	}
	for _, ch := range c.work {
		if ch != nil {
			close(ch)
		}
	}
	c.wg.Wait()
	for _, n := range c.nodes {
		if n.inbox != nil {
			if err := n.inbox.Close(); err != nil && first == nil {
				first = err
			}
		}
		if err := n.E.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
