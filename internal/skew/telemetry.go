package skew

import "repro/internal/telemetry"

// Bounded-skew runtime metrics (telemetry default registry, process-wide).
// The window-wait histogram is the skew cluster's analogue of the barrier
// cluster's cluster_barrier_wait_ns: comparing the two distributions is
// exactly the coordination-cost comparison WindowWait/BarrierWait make in
// aggregate, but per-tick.
var (
	telWindowWait = telemetry.NewHistogram("skew_window_wait_ns", "Per-tick coordinator wall blocked waiting for the skew window to admit the tick, in nanoseconds.")
)
