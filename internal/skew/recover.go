package skew

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/gamestate"
	"repro/internal/recovery"
	"repro/internal/wal"
)

// ErrNotSkew is returned by Recover when the manifest under root was written
// by the lock-step barrier cluster; recover it with cluster.Recover, whose
// torn-world refusal is the right check for that discipline.
var ErrNotSkew = errors.New("skew: manifest was written by the barrier cluster; use cluster.Recover")

// TornError reports a node whose recovered tick disagrees with the
// reconstructed cut: its local WAL holds ticks the logged-message store has
// lost (a hard kill without SyncEveryTick can drop an inbox tail), or an
// inbox claims ticks some node never durably reached. Either way the inbox
// logs no longer bound the world and no consistent cut exists, so recovery
// refuses rather than resume a torn world — the skew discipline's analogue
// of the barrier cluster's torn-world error.
type TornError struct {
	Node int    // the node that disagrees
	Tick uint64 // the tick its recovery reached (its engine NextTick)
	Cut  uint64 // the reconstructed cut's resume tick (C+1)
}

// Error renders the disagreement: which node, where it landed, where the
// reconstructed cut says the world resumes.
func (e *TornError) Error() string {
	return fmt.Sprintf("skew: recovered world is torn: node %d at tick %d, reconstructed cut resumes at %d",
		e.Node, e.Tick, e.Cut)
}

// WorldRecovery is the outcome of bounded-skew whole-world recovery: each
// node's pipeline breakdown plus the reconstructed cut. The cluster-level
// wall time is the slowest node's recovery — nodes recover concurrently,
// each from its own staggered checkpoint.
type WorldRecovery struct {
	// PerNode holds each node's parallel-pipeline breakdown.
	PerNode []recovery.ParallelResult
	// Wall is start → last node recovered.
	Wall time.Duration
	// Cut is the reconstructed consistent cut C: the highest tick present in
	// every node's inbox, hence the highest tick every partition can replay
	// to. The world resumes at C+1.
	Cut uint64
	// WorldTick is the tick the world resumed at (C+1; 0 for a world that
	// crashed before any tick was dispatched).
	WorldTick uint64
	// RolledForward counts, per node, the ticks replayed out of the inbox
	// store past the node's own local WAL — the roll-forward that replaces
	// the barrier world's "all nodes crashed at the same tick" assumption.
	RolledForward []uint64
}

// cappedSource adapts an inbox reader into a recovery.RecordSource that ends
// at the cut: records with tick > cap are unread, as if the log ended there.
type cappedSource struct {
	r   *wal.Reader
	cap uint64
}

func (s *cappedSource) Next() (uint64, []byte, bool, error) {
	if s.r == nil {
		return 0, nil, false, nil
	}
	tick, payload, err := s.r.Next()
	if err == io.EOF || (err == nil && tick > s.cap) {
		s.r.Close()
		s.r = nil
		return 0, nil, false, nil
	}
	if err != nil {
		s.r.Close()
		s.r = nil
		return 0, nil, false, err
	}
	return tick, payload, true, nil
}

// inboxLastTick full-scans one inbox for its final tick. wal.Open's cached
// lastTick covers only the final segment, which rotation can leave empty, so
// cut reconstruction must scan; the inboxes are pruned to roughly a window's
// worth of ticks, so the scan is short.
func inboxLastTick(dir string) (last uint64, any bool, err error) {
	r, err := wal.NewReader(dir)
	if err != nil {
		return 0, false, err
	}
	defer r.Close()
	for {
		tick, _, err := r.Next()
		if err == io.EOF {
			return last, any, nil
		}
		if err != nil {
			return 0, false, err
		}
		last, any = tick, true
	}
}

// rebuildInbox rewrites an inbox to hold only records with tick <= cut.
// Stale ticks past the cut are dispatch work the crash rolled back; the
// coordinator will re-dispatch those ticks (identically — the workload and
// Emit are pure), and leaving the old records in place would both break the
// log's non-decreasing append order and replay the ticks twice on the next
// recovery.
func rebuildInbox(dir string, cut uint64) error {
	tmp := dir + ".rebuild"
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	out, err := wal.Open(tmp)
	if err != nil {
		return err
	}
	r, err := wal.NewReader(dir)
	if err != nil {
		out.Close()
		return err
	}
	for {
		tick, payload, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			r.Close()
			out.Close()
			return err
		}
		if tick > cut {
			continue
		}
		if err := out.Append(tick, payload); err != nil {
			r.Close()
			out.Close()
			return err
		}
	}
	r.Close()
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	return os.Rename(tmp, dir)
}

// Recover reconstructs a consistent cut for a crashed bounded-skew world
// under root and resumes the cluster from it.
//
// The cut is C = the highest tick present in every node's inbox: Tick logs a
// tick to all inboxes before any node sees it, so every applied tick is in
// every inbox and C bounds what any node can have applied. Each node then
// recovers concurrently through the standard restore+replay pipeline with
// its inbox as the tail — its own checkpoint image, its own WAL, then the
// logged inbound envelopes up to C replayed past wherever its WAL ended
// (engine.RecoverWithTail, which also heals the WAL so the directory is
// self-sufficient). A node that cannot land exactly on C+1 means the inbox
// logs no longer bound the world; that is a *TornError, never a silent
// resume.
//
// Messages still inside the delivery window at the crash are not recovered
// from any log — they are regenerated by re-running opts.Emit (pure by
// contract) for every origin tick T in [C-MaxSkew, C]: a message emitted at
// T is delivered at T+MaxSkew+1, so exactly the emissions of those ticks are
// still undelivered at C, and emissions of rolled-back ticks (> C) recur
// when the ticks are re-applied. opts must carry the same Emit (and world
// geometry) the crashed world ran with; MaxSkew is taken from the manifest,
// and a conflicting opts.MaxSkew is an error.
func Recover(root string, opts Options) (*Cluster, *WorldRecovery, error) {
	man, err := cluster.ReadManifest(root)
	if err != nil {
		return nil, nil, err
	}
	if man.Coordination != cluster.CoordinationSkew {
		return nil, nil, ErrNotSkew
	}
	if opts.Table != (gamestate.Table{}) && opts.Table != man.Table {
		return nil, nil, fmt.Errorf("skew: recover geometry %v does not match manifest %v", opts.Table, man.Table)
	}
	opts.Table = man.Table
	opts.Dir = root
	if opts.Nodes != 0 && cluster.Uniform(man.Table.NumObjects(), opts.Nodes).NumNodes != man.Map.NumNodes {
		return nil, nil, fmt.Errorf("skew: recover with %d nodes, manifest has %d", opts.Nodes, man.Map.NumNodes)
	}
	if opts.MaxSkew != 0 && opts.MaxSkew != man.MaxSkew {
		return nil, nil, fmt.Errorf("skew: recover with MaxSkew %d, manifest has %d", opts.MaxSkew, man.MaxSkew)
	}
	opts.MaxSkew = man.MaxSkew
	n := man.Map.NumNodes

	// Reconstruct the cut: C = min over nodes of each node's durable horizon
	// — the last tick in its inbox, or its manifest checkpoint when that is
	// newer (a cut prunes the inbox ticks the image covers, possibly all of
	// them). A node with neither inbox records nor a cut defines no horizon;
	// if any other node does, an inbox has been lost and the reconstruction
	// falls to tick 0, which the post-recovery consistency check reports as
	// a torn world.
	cutOf := make(map[int]uint64, len(man.NodeCuts))
	for _, nc := range man.NodeCuts {
		cutOf[nc.Node] = nc.AsOfTick
	}
	var cut uint64
	defined := 0
	for i := 0; i < n; i++ {
		last, any, err := inboxLastTick(inboxDir(root, i))
		if err != nil {
			return nil, nil, fmt.Errorf("skew: node %d inbox: %w", i, err)
		}
		if asof, ok := cutOf[i]; ok && (!any || asof > last) {
			last, any = asof, true
		}
		if !any {
			continue
		}
		if defined == 0 || last < cut {
			cut = last
		}
		defined++
	}
	haveCut := defined == n
	if !haveCut {
		cut = 0
	}
	resume := uint64(0)
	if haveCut {
		resume = cut + 1
	}

	// Roll every node forward to the cut, concurrently.
	wr := &WorldRecovery{
		PerNode:       make([]recovery.ParallelResult, n),
		RolledForward: make([]uint64, n),
	}
	engines := make([]*engine.Engine, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dir := inboxDir(root, i)
			tail := func() (recovery.RecordSource, error) {
				if !haveCut {
					return &cappedSource{}, nil
				}
				r, err := wal.NewReader(dir)
				if err != nil {
					return nil, err
				}
				return &cappedSource{r: r, cap: cut}, nil
			}
			engines[i], wr.PerNode[i], errs[i] = engine.RecoverWithTail(
				nodeEngineOptions(opts, cluster.NodeDir(root, i)), tail)
		}(i)
	}
	wg.Wait()
	wr.Wall = time.Since(start)
	closeAll := func() {
		for _, e := range engines {
			if e != nil {
				e.Close()
			}
		}
	}
	for i, err := range errs {
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("skew: node %d recovery: %w", i, err)
		}
	}

	// Every node must land exactly on the cut, or the inbox logs no longer
	// bound the world and the reconstruction is unsound.
	for i, e := range engines {
		if e.NextTick() != resume {
			tick := e.NextTick()
			closeAll()
			return nil, wr, &TornError{Node: i, Tick: tick, Cut: resume}
		}
		if haveCut && cut >= wr.PerNode[i].LastLogTick {
			wr.RolledForward[i] = cut - wr.PerNode[i].LastLogTick
		}
	}
	wr.Cut = cut
	wr.WorldTick = resume

	// Drop inbox records past the cut: those ticks rolled back and will be
	// re-dispatched (identically) by the resumed coordinator.
	for i := 0; i < n; i++ {
		dir := inboxDir(root, i)
		last, any, err := inboxLastTick(dir)
		if err != nil {
			closeAll()
			return nil, wr, fmt.Errorf("skew: node %d inbox: %w", i, err)
		}
		if any && last > cut {
			if err := rebuildInbox(dir, cut); err != nil {
				closeAll()
				return nil, wr, fmt.Errorf("skew: node %d inbox rebuild: %w", i, err)
			}
		}
	}

	c, err := build(opts, man.Map, resume, man.NodeCuts, func(i int, dir string) (*engine.Engine, error) {
		return engines[i], nil
	})
	if err != nil {
		closeAll()
		return nil, nil, err
	}

	// Regenerate the in-flight messages. Emissions of ticks [C-W, C] have
	// delivery ticks in [C+1, C+W+1] — exactly the window the crash emptied.
	if c.opts.Emit != nil && haveCut {
		lo := uint64(0)
		if cut >= c.window {
			lo = cut - c.window
		}
		for i := 0; i < c.m.NumNodes; i++ {
			for t := lo; t <= cut; t++ {
				if err := c.emit(i, t); err != nil {
					c.Close()
					return nil, wr, err
				}
			}
		}
	}
	return c, wr, nil
}
