package chaos

import (
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ConnFaults selects the network fault shapes a chaos Conn injects on its
// write path. The replication wire format writes one frame per Write call,
// so the shapes map cleanly onto protocol events: a *drop* loses exactly one
// frame (the peer sees a gap or an out-of-order chunk and fails the
// session), a *sever* cuts the stream mid-frame (the peer seals at the last
// complete frame), a *delay* stretches latency without corrupting anything.
type ConnFaults struct {
	// SeverProb severs the connection on a write with this probability: a
	// schedule-chosen prefix of the buffer goes out, then the conn closes —
	// a cut mid-frame. Both directions die (the transport is gone).
	SeverProb float64
	// SeverAfterBytes severs deterministically once the cumulative bytes
	// written cross this threshold (0 disables). The crossing write is cut
	// exactly at the threshold.
	SeverAfterBytes int64
	// DropProb silently swallows a whole write with this probability while
	// reporting success — a one-direction partition: this end keeps
	// sending, the peer stops hearing. With per-frame writes this loses
	// exactly one frame.
	DropProb float64
	// DelayProb sleeps Delay before a write completes (default 1ms when
	// Delay is zero). Delays reorder nothing; they only stretch time.
	DelayProb float64
	Delay     time.Duration
}

// Conn wraps a net.Conn with schedule-driven write-path fault injection.
// Deadlines, addresses and the read path pass through (a severed conn's
// reads fail naturally once the underlying conn closes).
type Conn struct {
	net.Conn
	site   string
	faults ConnFaults
	sleep  func(time.Duration)
	tel    *telemetry.VecCounter

	mu       sync.Mutex
	rng      *Rand
	writes   int64
	written  int64
	injected int64
	severed  bool
}

// WrapConn builds the injector for one site. The same (seed, site) always
// yields the same decision stream.
func WrapConn(c net.Conn, seed int64, site string, faults ConnFaults) *Conn {
	if faults.Delay <= 0 {
		faults.Delay = time.Millisecond
	}
	return &Conn{
		Conn:   c,
		site:   site,
		faults: faults,
		sleep:  time.Sleep,
		tel:    telInjected.With(site),
		rng:    NewRand(seed, site),
	}
}

// SetSleep replaces the delay clock (tests stub it out).
func (c *Conn) SetSleep(fn func(time.Duration)) { c.sleep = fn }

// Injected returns how many faults this conn has injected.
func (c *Conn) Injected() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// Severed reports whether an injected sever has cut the conn.
func (c *Conn) Severed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.severed
}

// Write implements net.Conn with the fault schedule applied per call.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	n := c.writes
	if c.severed {
		c.injected++
		c.tel.Inc()
		err := &Error{Site: c.site, Op: "sever", N: n}
		c.mu.Unlock()
		return 0, err
	}
	delay := c.faults.DelayProb > 0 && c.rng.Float64() < c.faults.DelayProb
	drop := c.faults.DropProb > 0 && c.rng.Float64() < c.faults.DropProb
	sever := c.faults.SeverProb > 0 && c.rng.Float64() < c.faults.SeverProb
	cut := int64(len(p))
	if sever && len(p) > 0 {
		cut = int64(c.rng.Intn(len(p)))
	}
	if c.faults.SeverAfterBytes > 0 && !drop {
		if remaining := c.faults.SeverAfterBytes - c.written; cut >= remaining {
			cut, sever = remaining, true
		}
	}
	var ierr error
	if sever {
		c.severed = true
		c.injected++
		c.tel.Inc()
		ierr = &Error{Site: c.site, Op: "sever", N: n}
	} else if drop {
		c.injected++
		c.tel.Inc()
	}
	if !drop {
		c.written += cut
	}
	c.mu.Unlock()
	if delay {
		c.sleep(c.faults.Delay)
	}
	switch {
	case sever:
		wn := 0
		if cut > 0 {
			wn, _ = c.Conn.Write(p[:cut])
		}
		c.Conn.Close() //nolint:errcheck // the sever; best effort
		return wn, ierr
	case drop:
		return len(p), nil
	default:
		return c.Conn.Write(p)
	}
}

// Listener wraps a net.Listener so every accepted conn gets its own
// substream: the Kth accept is keyed "site#K", making each session's faults
// independent of how earlier sessions consumed the schedule.
type Listener struct {
	net.Listener
	seed   int64
	site   string
	faults ConnFaults

	mu       sync.Mutex
	accepted int
	conns    []*Conn
}

// WrapListener builds the accept-side injector for one site.
func WrapListener(ln net.Listener, seed int64, site string, faults ConnFaults) *Listener {
	return &Listener{Listener: ln, seed: seed, site: site, faults: faults}
}

// Accept wraps the next conn with the site's next substream.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	k := l.accepted
	l.accepted++
	wc := WrapConn(c, l.seed, subSite(l.site, k), l.faults)
	l.conns = append(l.conns, wc)
	l.mu.Unlock()
	return wc, nil
}

// Injected sums injected faults across every accepted conn.
func (l *Listener) Injected() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, c := range l.conns {
		total += c.Injected()
	}
	return total
}

// subSite names session K of a site's schedule.
func subSite(site string, k int) string {
	return site + "#" + itoa(k)
}

func itoa(k int) string {
	if k == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for k > 0 {
		i--
		buf[i] = byte('0' + k%10)
		k /= 10
	}
	return string(buf[i:])
}
