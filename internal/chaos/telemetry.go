package chaos

import "repro/internal/telemetry"

// telInjected counts injected faults by schedule site. Each wrapper caches
// its site's child at wrap time, so the per-op fault path touches one atomic
// — no label lookup under the device or conn mutex.
var telInjected = telemetry.NewCounterVec("chaos_injected_faults_total", "site", "Faults injected by the chaos schedule, by site.")
