// Package chaos is the deterministic fault-injection layer: schedule-driven
// wrappers for disk devices (torn writes, read/write/sync errors, stalls,
// bit-flips on unsynced bytes) and network connections (drops, delays,
// one-direction partitions, mid-frame severs), all keyed by a (seed, site)
// pair so every chaos run — and every failure it surfaces — is replayable
// from its seed alone.
//
// The design splits *decision* from *timing*: whether the Nth operation at a
// site faults is a pure function of (seed, site, N), computed from a
// SplitMix64 stream. What can drift between runs is how many operations a
// concurrent component has issued by a given wall-clock moment (an async
// checkpoint flush may be one chunk further along), so replays reproduce the
// same fault *shape* at the same *operation index*, not necessarily at the
// same nanosecond. That is the strongest determinism an injection layer can
// offer without lock-stepping the system under test, and it is enough: a
// failing (seed, site) cell reproduces the same injected faults in the same
// per-site order every run.
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
)

// ErrInjected is the sentinel every injected chaos fault matches via
// errors.Is, regardless of site or shape.
var ErrInjected = errors.New("chaos: injected fault")

// Error is the typed fault all injectors return: the site and operation
// identify the schedule cell, N the operation index within the site's
// stream — together with the seed, enough to replay the exact fault.
type Error struct {
	Site string // schedule site, e.g. "disk/a" or "replink/standby"
	Op   string // operation faulted, e.g. "write", "read", "sync", "sever"
	N    int64  // site-local operation index at which the fault fired
}

func (e *Error) Error() string {
	return fmt.Sprintf("chaos: injected %s fault at %s op %d", e.Op, e.Site, e.N)
}

// Is makes every *Error match ErrInjected.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// Rand is a deterministic SplitMix64 stream keyed by (seed, site). Each
// injector owns one; the stream is consumed one draw per decision point, so
// the Kth decision at a site is a pure function of (seed, site, K).
//
// Rand is not goroutine-safe; injectors serialize draws under their own
// locks.
type Rand struct {
	state uint64
}

// NewRand derives the (seed, site) substream: the site name is folded in via
// FNV-1a, the same salt recipe internal/workload uses to keep sibling
// scenarios uncorrelated at a shared seed.
func NewRand(seed int64, site string) *Rand {
	h := fnv.New64a()
	h.Write([]byte(site)) //nolint:errcheck // fnv never fails
	return &Rand{state: uint64(seed)*0x9E3779B97F4A7C15 + h.Sum64()}
}

// Uint64 advances the SplitMix64 stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	x := r.state
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Float64 draws from [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn draws from [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("chaos: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}
