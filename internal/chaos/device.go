package chaos

import (
	"errors"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/telemetry"
)

// DeviceFaults selects which fault shapes a chaos Device injects. Zero
// values disable each shape, so the zero DeviceFaults is a transparent
// wrapper.
type DeviceFaults struct {
	// ReadErrProb / WriteErrProb / SyncErrProb fail the matching op with
	// this probability, drawn per op from the device's (seed, site) stream.
	ReadErrProb  float64
	WriteErrProb float64
	SyncErrProb  float64
	// ReadErrEvery / WriteErrEvery fail every Nth op of the kind (1-based;
	// 0 disables). Deterministic nth-op faults compose with the
	// probabilistic ones — either firing injects.
	ReadErrEvery  int64
	WriteErrEvery int64
	// WriteBudget, when positive, is a byte budget after which the device
	// goes permanently dead for writes and syncs — the power-cut shape
	// disk.Fault models, here at a schedule-chosen point. The write that
	// crosses the boundary is torn at the budget.
	WriteBudget int64
	// TornWrites makes injected write errors land a schedule-chosen prefix
	// of the buffer on the underlying device before failing, instead of
	// dropping the write whole — a torn sector write at an arbitrary
	// offset.
	TornWrites bool
	// BitFlipOnSyncFail corrupts one bit of a not-yet-synced byte range on
	// the underlying device when a sync fault fires: the medium lost cached
	// writes. Safe against the checkpoint protocol's invariant — a complete
	// header only ever covers synced data — which is exactly what the
	// harness is probing.
	BitFlipOnSyncFail bool
	// StallProb injects a latency stall of Stall before the op completes
	// (default 1ms when Stall is zero). Stalls are delays, not errors.
	StallProb float64
	Stall     time.Duration
}

// maxUnsyncedSpans bounds the unsynced-write tracking; beyond it, new spans
// fold into the last entry (the tracking only needs to cover *some* unsynced
// bytes to pick a bit-flip target, not an exact set).
const maxUnsyncedSpans = 64

type span struct{ off, end int64 }

// Device wraps a disk.Device with schedule-driven fault injection. All
// decisions come from the (seed, site) stream, so two runs at the same key
// inject the same fault at the same per-site operation index.
type Device struct {
	dev    disk.Device
	site   string
	faults DeviceFaults
	sleep  func(time.Duration) // injectable for tests; default time.Sleep
	tel    *telemetry.VecCounter

	mu       sync.Mutex
	rng      *Rand
	reads    int64
	writes   int64
	syncs    int64
	injected int64
	spent    int64 // bytes written against WriteBudget
	dead     bool  // budget exhausted: writes and syncs fail permanently
	unsynced []span
}

// WrapDevice builds the injector for one site. The same (seed, site) always
// yields the same decision stream.
func WrapDevice(dev disk.Device, seed int64, site string, faults DeviceFaults) *Device {
	if faults.Stall <= 0 {
		faults.Stall = time.Millisecond
	}
	return &Device{
		dev:    dev,
		site:   site,
		faults: faults,
		sleep:  time.Sleep,
		tel:    telInjected.With(site),
		rng:    NewRand(seed, site),
	}
}

// SetSleep replaces the stall clock (tests stub it to count stalls without
// waiting).
func (d *Device) SetSleep(fn func(time.Duration)) { d.sleep = fn }

// Injected returns how many faults this device has injected.
func (d *Device) Injected() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.injected
}

// Ops returns the per-kind operation counts (reads, writes, syncs).
func (d *Device) Ops() (reads, writes, syncs int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes, d.syncs
}

// err builds the typed fault for the op at index n.
func (d *Device) err(op string, n int64) error {
	d.injected++
	d.tel.Inc()
	return &Error{Site: d.site, Op: op, N: n}
}

// ReadAt implements disk.Device.
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	d.reads++
	n := d.reads
	stall := d.faults.StallProb > 0 && d.rng.Float64() < d.faults.StallProb
	fail := d.faults.ReadErrEvery > 0 && n%d.faults.ReadErrEvery == 0
	if d.faults.ReadErrProb > 0 && d.rng.Float64() < d.faults.ReadErrProb {
		fail = true
	}
	var err error
	if fail {
		err = d.err("read", n)
	}
	d.mu.Unlock()
	if stall {
		d.sleep(d.faults.Stall)
	}
	if err != nil {
		return 0, err
	}
	return d.dev.ReadAt(p, off)
}

// WriteAt implements disk.Device. An injected write error optionally tears:
// a schedule-chosen prefix reaches the underlying device (and is recorded as
// unsynced), then the typed fault is returned — joined with any error the
// underlying device raised on the partial write, so a double fault stays
// visible.
func (d *Device) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	d.writes++
	n := d.writes
	stall := d.faults.StallProb > 0 && d.rng.Float64() < d.faults.StallProb
	if d.dead {
		err := d.err("write", n)
		d.mu.Unlock()
		return 0, err
	}
	fail := d.faults.WriteErrEvery > 0 && n%d.faults.WriteErrEvery == 0
	if d.faults.WriteErrProb > 0 && d.rng.Float64() < d.faults.WriteErrProb {
		fail = true
	}
	tear := int64(len(p)) // bytes that reach the device
	if fail && d.faults.TornWrites && len(p) > 0 {
		tear = int64(d.rng.Intn(len(p))) // strict prefix: the tail is lost
	} else if fail {
		tear = 0
	}
	if d.faults.WriteBudget > 0 {
		if remaining := d.faults.WriteBudget - d.spent; tear >= remaining {
			tear, fail, d.dead = remaining, true, true
		}
	}
	d.spent += tear
	var ierr error
	if fail {
		ierr = d.err("write", n)
	}
	if tear > 0 {
		d.noteUnsynced(off, off+tear)
	}
	d.mu.Unlock()
	if stall {
		d.sleep(d.faults.Stall)
	}
	if !fail {
		return d.dev.WriteAt(p, off)
	}
	var wn int
	var werr error
	if tear > 0 {
		wn, werr = d.dev.WriteAt(p[:tear], off)
	}
	if werr != nil {
		return wn, errors.Join(ierr, werr)
	}
	return wn, ierr
}

// Sync implements disk.Device. On an injected sync failure the unsynced
// write set stays dirty; with BitFlipOnSyncFail one bit of it is corrupted
// on the underlying device — cached writes the medium never made durable.
func (d *Device) Sync() error {
	d.mu.Lock()
	d.syncs++
	n := d.syncs
	stall := d.faults.StallProb > 0 && d.rng.Float64() < d.faults.StallProb
	if d.dead {
		err := d.err("sync", n)
		d.mu.Unlock()
		return err
	}
	fail := d.faults.SyncErrProb > 0 && d.rng.Float64() < d.faults.SyncErrProb
	var ierr error
	var flip *span
	var flipByte int64
	var flipBit uint
	if fail {
		ierr = d.err("sync", n)
		if d.faults.BitFlipOnSyncFail && len(d.unsynced) > 0 {
			s := d.unsynced[d.rng.Intn(len(d.unsynced))]
			if s.end > s.off {
				flip = &s
				flipByte = s.off + int64(d.rng.Intn(int(s.end-s.off)))
				flipBit = uint(d.rng.Intn(8))
			}
		}
	}
	d.mu.Unlock()
	if stall {
		d.sleep(d.faults.Stall)
	}
	if fail {
		if flip != nil {
			var b [1]byte
			if _, err := d.dev.ReadAt(b[:], flipByte); err == nil {
				b[0] ^= 1 << flipBit
				d.dev.WriteAt(b[:], flipByte) //nolint:errcheck // corruption is best-effort
			}
		}
		return ierr
	}
	err := d.dev.Sync()
	if err == nil {
		d.mu.Lock()
		d.unsynced = d.unsynced[:0]
		d.mu.Unlock()
	}
	return err
}

// Close implements disk.Device.
func (d *Device) Close() error { return d.dev.Close() }

// noteUnsynced records [off, end) as written-but-not-synced. Called under mu.
func (d *Device) noteUnsynced(off, end int64) {
	if len(d.unsynced) >= maxUnsyncedSpans {
		last := &d.unsynced[len(d.unsynced)-1]
		if off < last.off {
			last.off = off
		}
		if end > last.end {
			last.end = end
		}
		return
	}
	d.unsynced = append(d.unsynced, span{off, end})
}
