package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/disk"
)

func TestRandReplayableAndSiteKeyed(t *testing.T) {
	a := NewRand(42, "disk/a")
	b := NewRand(42, "disk/a")
	c := NewRand(42, "disk/b")
	var diverged bool
	for i := 0; i < 100; i++ {
		av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
		if av != bv {
			t.Fatalf("draw %d: same (seed, site) diverged: %d vs %d", i, av, bv)
		}
		if av != cv {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("distinct sites produced identical streams")
	}
}

func TestDeviceWriteBudgetTears(t *testing.T) {
	mem := disk.NewMem()
	d := WrapDevice(mem, 1, "disk/a", DeviceFaults{WriteBudget: 10})
	if _, err := d.WriteAt(bytes.Repeat([]byte{0xAA}, 8), 0); err != nil {
		t.Fatalf("write under budget: %v", err)
	}
	n, err := d.WriteAt(bytes.Repeat([]byte{0xBB}, 8), 8)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("budget-crossing write: got %v, want ErrInjected", err)
	}
	if n != 2 {
		t.Fatalf("torn write landed %d bytes, want 2 (the remaining budget)", n)
	}
	var ce *Error
	if !errors.As(err, &ce) || ce.Site != "disk/a" || ce.Op != "write" {
		t.Fatalf("want typed *Error{disk/a, write}, got %#v", err)
	}
	got := make([]byte, 12)
	if _, err := mem.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	want := append(bytes.Repeat([]byte{0xAA}, 8), 0xBB, 0xBB, 0, 0)
	if !bytes.Equal(got, want) {
		t.Fatalf("underlying bytes = %x, want %x", got, want)
	}
	if _, err := d.WriteAt([]byte{1}, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after death: got %v", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync after death: got %v", err)
	}
	if _, err := d.ReadAt(got[:1], 0); err != nil {
		t.Fatalf("reads must survive a dead writer: %v", err)
	}
}

func TestDeviceNthOpReplayable(t *testing.T) {
	run := func() []bool {
		d := WrapDevice(disk.NewMem(), 7, "disk/b", DeviceFaults{
			WriteErrEvery: 3, WriteErrProb: 0.2, TornWrites: true,
		})
		outcomes := make([]bool, 12)
		for i := range outcomes {
			_, err := d.WriteAt([]byte{1, 2, 3, 4}, 0)
			outcomes[i] = err != nil
			if i == 2 && !errors.Is(err, ErrInjected) {
				t.Fatalf("3rd write must fault (WriteErrEvery=3), got %v", err)
			}
		}
		return outcomes
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("op %d: replay diverged (%v vs %v)", i, first[i], second[i])
		}
	}
}

func TestDeviceBitFlipOnSyncFail(t *testing.T) {
	mem := disk.NewMem()
	d := WrapDevice(mem, 3, "disk/c", DeviceFaults{SyncErrProb: 1, BitFlipOnSyncFail: true})
	payload := bytes.Repeat([]byte{0xFF}, 16)
	if _, err := d.WriteAt(payload, 4); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync: got %v, want ErrInjected", err)
	}
	got := make([]byte, 16)
	if _, err := mem.ReadAt(got, 4); err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for i := range got {
		for bit := 0; bit < 8; bit++ {
			if got[i]&(1<<bit) != payload[i]&(1<<bit) {
				flipped++
			}
		}
	}
	if flipped != 1 {
		t.Fatalf("%d bits flipped in the unsynced range, want exactly 1", flipped)
	}
}

func TestDeviceStall(t *testing.T) {
	var stalls int
	d := WrapDevice(disk.NewMem(), 5, "disk/d", DeviceFaults{StallProb: 1, Stall: time.Second})
	d.SetSleep(func(time.Duration) { stalls++ })
	if _, err := d.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAt(make([]byte, 1), 0); err != nil {
		t.Fatal(err)
	}
	if stalls != 2 {
		t.Fatalf("stalls = %d, want 2", stalls)
	}
}

func TestConnSeverMidFrame(t *testing.T) {
	pc, sc := net.Pipe()
	wc := WrapConn(pc, 11, "replink", ConnFaults{SeverAfterBytes: 10})
	recvd := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(sc)
		recvd <- data
	}()
	if _, err := wc.Write(bytes.Repeat([]byte{0xAB}, 8)); err != nil {
		t.Fatalf("write under threshold: %v", err)
	}
	n, err := wc.Write(bytes.Repeat([]byte{0xCD}, 8))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write: got %v, want ErrInjected", err)
	}
	if n != 2 {
		t.Fatalf("severed write landed %d bytes, want 2", n)
	}
	if !wc.Severed() {
		t.Fatal("conn not marked severed")
	}
	if _, err := wc.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after sever: got %v", err)
	}
	got := <-recvd
	want := append(bytes.Repeat([]byte{0xAB}, 8), 0xCD, 0xCD)
	if !bytes.Equal(got, want) {
		t.Fatalf("peer saw %x, want %x (prefix then cut)", got, want)
	}
}

func TestConnDropLosesOneWrite(t *testing.T) {
	pc, sc := net.Pipe()
	wc := WrapConn(pc, 13, "replink/drop", ConnFaults{DropProb: 1})
	done := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(sc)
		done <- data
	}()
	n, err := wc.Write([]byte{1, 2, 3})
	if err != nil || n != 3 {
		t.Fatalf("dropped write must report success, got n=%d err=%v", n, err)
	}
	if wc.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", wc.Injected())
	}
	pc.Close()
	if got := <-done; len(got) != 0 {
		t.Fatalf("peer received %x, want nothing", got)
	}
}

func TestListenerSubstreamsPerAccept(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wl := WrapListener(ln, 17, "cluster/node0", ConnFaults{})
	defer wl.Close()
	go func() {
		for i := 0; i < 2; i++ {
			c, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	c0, err := wl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := wl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	s0, s1 := c0.(*Conn).site, c1.(*Conn).site
	if s0 != "cluster/node0#0" || s1 != "cluster/node0#1" {
		t.Fatalf("accepted sites = %q, %q", s0, s1)
	}
}
