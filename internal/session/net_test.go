package session

import (
	"net"
	"testing"
	"time"

	"repro/internal/wal"
)

// tcpPair returns a loopback server/client conn pair.
func tcpPair(t *testing.T) (server, client net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, cerr := net.Dial("tcp", ln.Addr().String())
	<-done
	if err != nil || cerr != nil {
		t.Fatalf("accept: %v dial: %v", err, cerr)
	}
	t.Cleanup(func() { server.Close(); client.Close() })
	return server, client
}

func TestTCPSessionRoundTrip(t *testing.T) {
	w, _ := memWorld(t)
	g := newTestGateway(t, Options{World: w})
	sconn, cconn := tcpPair(t)

	served := make(chan error, 1)
	go func() { served <- g.ServeConn(sconn) }()

	c, err := NewClient(cconn, g.Table(), 5, Range{Lo: 0, Hi: 64})
	if err != nil {
		t.Fatal(err)
	}
	if c.NextTick != 0 {
		t.Fatalf("welcome next tick = %d, want 0", c.NextTick)
	}
	// Wait for the server goroutine to register the session before ticking.
	for i := 0; g.Sessions() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	in := []wal.Update{{Cell: 1, Value: 10}, {Cell: 2, Value: 20}}
	if err := c.Submit(in); err != nil {
		t.Fatal(err)
	}
	// Submit is async to Step: poll until the intents are staged.
	deadline := time.Now().Add(5 * time.Second)
	var batch []wal.Update
	for {
		if batch, err = g.Step(); err != nil {
			t.Fatal(err)
		}
		if len(batch) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("intents never arrived at the gateway")
		}
		time.Sleep(time.Millisecond)
	}
	if len(batch) != 2 || batch[0] != in[0] || batch[1] != in[1] {
		t.Fatalf("batch = %v, want %v", batch, in)
	}

	tick, updates, err := c.ReadDelta()
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 2 || updates[0] != in[0] || updates[1] != in[1] {
		t.Fatalf("delta tick %d = %v, want %v", tick, updates, in)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != nil {
		t.Fatalf("ServeConn: %v", err)
	}
	if g.Sessions() != 0 {
		t.Fatalf("session still registered after bye")
	}
}

func TestTCPGeometryMismatchRejected(t *testing.T) {
	w, _ := memWorld(t)
	g := newTestGateway(t, Options{World: w})
	sconn, cconn := tcpPair(t)

	served := make(chan error, 1)
	go func() { served <- g.ServeConn(sconn) }()

	bad := g.Table()
	bad.Rows /= 2
	if _, err := NewClient(cconn, bad, 1, Range{Lo: 0, Hi: 64}); err == nil {
		t.Fatal("client accepted despite geometry mismatch")
	}
	if err := <-served; err == nil {
		t.Fatal("ServeConn accepted a mismatched geometry")
	}
	if g.Sessions() != 0 {
		t.Fatal("mismatched client left a session behind")
	}
}

func TestTCPBadMagicRejected(t *testing.T) {
	w, _ := memWorld(t)
	g := newTestGateway(t, Options{World: w})
	sconn, cconn := tcpPair(t)

	served := make(chan error, 1)
	go func() { served <- g.ServeConn(sconn) }()

	body := helloBody(1, Range{Lo: 0, Hi: 64}, g.Table())
	copy(body[1:], "NOTMAGIC")
	if err := writeFrame(cconn, body); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err == nil {
		t.Fatal("ServeConn accepted a bad magic")
	}
}
