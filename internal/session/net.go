package session

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"

	"repro/internal/gamestate"
	"repro/internal/wal"
)

// The wire protocol mirrors internal/replication's framing: every frame is
// a u32 little-endian body length, a u32 CRC32-IEEE of the body, then the
// body, whose first byte is the frame type. Corruption fails loudly at the
// CRC, truncation at the length read. The session stream is:
//
//	client → gateway: hello, then intent*        (then bye or EOF)
//	gateway → client: welcome, then delta*
//
// hello carries the protocol magic, the session ID, the interest window,
// and the client's view of the world geometry; the gateway rejects a
// geometry mismatch before any state flows, the same guard the replication
// handshake applies.

// protoMagic identifies the gateway session protocol, version 1.
const protoMagic = "MMOGATE1"

// Frame types: the first body byte of every frame.
const (
	frameHello   = 1 // client→gateway: magic, id, interest, geometry
	frameWelcome = 2 // gateway→client: magic, next world tick
	frameIntent  = 3 // client→gateway: wal-encoded updates to stage
	frameDelta   = 4 // gateway→client: tick + wal-encoded interest updates
	frameBye     = 5 // client→gateway: clean disconnect
)

// maxFrame bounds a frame body; larger lengths are treated as stream
// corruption, like the replication reader does.
const maxFrame = 64 << 20

var crcTable = crc32.IEEETable

// writeFrame sends one length+CRC framed body.
func writeFrame(w io.Writer, body []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one framed body into buf (reused), verifying the CRC.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("session: frame length %d outside (0,%d]", n, maxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if got, want := crc32.Checksum(buf, crcTable), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return nil, fmt.Errorf("session: frame CRC %08x, want %08x", got, want)
	}
	return buf, nil
}

// helloBody encodes a hello frame: type, magic, id, interest, geometry.
func helloBody(id uint64, interest Range, t gamestate.Table) []byte {
	b := make([]byte, 0, 1+8+8+8+8+8+4+4)
	b = append(b, frameHello)
	b = append(b, protoMagic...)
	b = binary.LittleEndian.AppendUint64(b, id)
	b = binary.LittleEndian.AppendUint64(b, uint64(interest.Lo))
	b = binary.LittleEndian.AppendUint64(b, uint64(interest.Hi))
	b = binary.LittleEndian.AppendUint64(b, uint64(t.NumObjects()))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.ObjSize))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.CellSize))
	return b
}

// ServeConn runs one client session over a framed connection: handshake,
// then a reader loop staging intent frames and a writer goroutine pushing
// delta frames, until EOF, bye, or error. It blocks for the session's
// lifetime — run one goroutine per accepted conn — and always disconnects
// the session and closes conn before returning. Wrap conn with
// replication.NewIdleConn to bound how long a silent client can hold a
// session slot.
func (g *Gateway) ServeConn(conn net.Conn) error {
	defer conn.Close()
	buf, err := readFrame(conn, nil)
	if err != nil {
		return fmt.Errorf("session: hello: %w", err)
	}
	if len(buf) != 1+8+8+8+8+8+4+4 || buf[0] != frameHello || string(buf[1:9]) != protoMagic {
		return fmt.Errorf("session: bad hello frame (%d bytes)", len(buf))
	}
	id := binary.LittleEndian.Uint64(buf[9:17])
	interest := Range{
		Lo: int(binary.LittleEndian.Uint64(buf[17:25])),
		Hi: int(binary.LittleEndian.Uint64(buf[25:33])),
	}
	t := g.Table()
	if objs := binary.LittleEndian.Uint64(buf[33:41]); int(objs) != t.NumObjects() ||
		binary.LittleEndian.Uint32(buf[41:45]) != uint32(t.ObjSize) ||
		binary.LittleEndian.Uint32(buf[45:49]) != uint32(t.CellSize) {
		return fmt.Errorf("session %d: client geometry disagrees with world %v", id, t)
	}
	s, err := g.Connect(id, interest)
	if err != nil {
		return err
	}
	defer s.Close()

	welcome := make([]byte, 0, 1+8+8)
	welcome = append(welcome, frameWelcome)
	welcome = append(welcome, protoMagic...)
	welcome = binary.LittleEndian.AppendUint64(welcome, g.world.NextTick())
	if err := writeFrame(conn, welcome); err != nil {
		return err
	}

	// Writer: session deltas → delta frames. A write error closes the conn,
	// which unblocks the reader loop below.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]byte, 0, 4096)
		for {
			select {
			case <-s.Gone():
				return
			case d := <-s.Deltas():
				out = append(out[:0], frameDelta)
				out = binary.LittleEndian.AppendUint64(out, d.Tick)
				out = wal.EncodeUpdates(out, d.Updates)
				if err := writeFrame(conn, out); err != nil {
					conn.Close()
					return
				}
			}
		}
	}()
	// On any exit, disconnect the session first (closing Gone) so the writer
	// goroutine unblocks, then join it.
	defer func() { s.Close(); wg.Wait() }()

	var intents []wal.Update
	for {
		if buf, err = readFrame(conn, buf); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch buf[0] {
		case frameIntent:
			if intents, err = wal.DecodeUpdates(intents[:0], buf[1:]); err != nil {
				return err
			}
			if err := s.Submit(intents); err != nil {
				return err
			}
		case frameBye:
			return nil
		default:
			return fmt.Errorf("session %d: unexpected frame type %d", id, buf[0])
		}
	}
}

// Client is the remote half of a TCP session: it speaks the gateway frame
// protocol over any net.Conn (wrap with replication.NewIdleConn for
// deadline enforcement). Submit and ReadDelta may run on different
// goroutines; neither is safe for concurrent use with itself.
type Client struct {
	conn net.Conn
	// NextTick is the world tick the gateway reported at handshake.
	NextTick uint64

	wmu  sync.Mutex
	out  []byte
	rbuf []byte
	upd  []wal.Update
}

// NewClient performs the session handshake over conn: hello out, welcome
// back. table must match the server's world geometry exactly.
func NewClient(conn net.Conn, table gamestate.Table, id uint64, interest Range) (*Client, error) {
	if err := writeFrame(conn, helloBody(id, interest, table)); err != nil {
		return nil, err
	}
	buf, err := readFrame(conn, nil)
	if err != nil {
		return nil, fmt.Errorf("session: welcome: %w", err)
	}
	if len(buf) != 1+8+8 || buf[0] != frameWelcome || string(buf[1:9]) != protoMagic {
		return nil, fmt.Errorf("session: bad welcome frame (%d bytes)", len(buf))
	}
	return &Client{conn: conn, NextTick: binary.LittleEndian.Uint64(buf[9:17]), rbuf: buf}, nil
}

// Submit sends one intent frame staging updates for the gateway's next tick.
func (c *Client) Submit(updates []wal.Update) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.out = append(c.out[:0], frameIntent)
	c.out = wal.EncodeUpdates(c.out, updates)
	return writeFrame(c.conn, c.out)
}

// ReadDelta blocks for the next delta frame and returns its tick and
// updates. The updates slice is reused by the next call.
func (c *Client) ReadDelta() (tick uint64, updates []wal.Update, err error) {
	c.rbuf, err = readFrame(c.conn, c.rbuf)
	if err != nil {
		return 0, nil, err
	}
	if c.rbuf[0] != frameDelta || len(c.rbuf) < 9 {
		return 0, nil, fmt.Errorf("session: expected delta frame, got type %d (%d bytes)", c.rbuf[0], len(c.rbuf))
	}
	tick = binary.LittleEndian.Uint64(c.rbuf[1:9])
	c.upd, err = wal.DecodeUpdates(c.upd[:0], c.rbuf[9:])
	return tick, c.upd, err
}

// Close sends a clean bye and closes the connection.
func (c *Client) Close() error {
	c.wmu.Lock()
	writeFrame(c.conn, []byte{frameBye})
	c.wmu.Unlock()
	return c.conn.Close()
}
