package session

import "repro/internal/cluster"

// interestIndex maps partition slots to the sessions interested in them:
// area-of-interest filtering is a bucket lookup, not a per-session range
// scan. The bucket grain is cluster.SlotSize objects — the same 64-object
// slot the partition map owns and the engine's bitmap words cover — so an
// interest window is a contiguous run of the same slots a partition
// boundary is made of, and the fan-out's per-update work is
// O(interested sessions), independent of total sessions.
type interestIndex struct {
	subs [][]*Session
}

// newInterestIndex sizes the index for a world of objects.
func newInterestIndex(objects int) *interestIndex {
	return &interestIndex{subs: make([][]*Session, (objects+cluster.SlotSize-1)>>cluster.SlotShift)}
}

// slotRange returns the half-open slot range covering an object range.
func slotRange(r Range) (lo, hi int) {
	return r.Lo >> cluster.SlotShift, (r.Hi + cluster.SlotSize - 1) >> cluster.SlotShift
}

// add registers s in every slot its interest window touches. Caller holds
// the gateway mutex.
func (ix *interestIndex) add(s *Session) {
	lo, hi := slotRange(s.interest)
	for slot := lo; slot < hi; slot++ {
		ix.subs[slot] = append(ix.subs[slot], s)
	}
}

// remove unregisters s from every slot its interest window touches. Caller
// holds the gateway mutex.
func (ix *interestIndex) remove(s *Session) {
	lo, hi := slotRange(s.interest)
	for slot := lo; slot < hi; slot++ {
		bucket := ix.subs[slot]
		for i, x := range bucket {
			if x == s {
				bucket[i] = bucket[len(bucket)-1]
				ix.subs[slot] = bucket[:len(bucket)-1]
				break
			}
		}
	}
}

// at returns the sessions interested in a slot. Caller holds the gateway
// mutex and must not retain the slice.
func (ix *interestIndex) at(slot int) []*Session { return ix.subs[slot] }
