package session

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/gamestate"
	"repro/internal/wal"
	"repro/internal/workload"
)

func testTable() gamestate.Table {
	return gamestate.Table{Rows: 8192, Cols: 8, CellSize: 4, ObjSize: 512}
}

// memWorld opens an in-memory ModeNone engine world: the lightest world a
// gateway can front.
func memWorld(t *testing.T) (World, *engine.Engine) {
	t.Helper()
	e, err := engine.Open(engine.Options{Table: testTable(), Mode: engine.ModeNone, InMemory: true, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return EngineWorld{E: e}, e
}

func newTestGateway(t *testing.T, opts Options) *Gateway {
	t.Helper()
	g, err := NewGateway(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func TestConnectRules(t *testing.T) {
	w, _ := memWorld(t)
	g := newTestGateway(t, Options{World: w})
	objs := g.Table().NumObjects()

	s, err := g.Connect(7, Range{Lo: 0, Hi: objs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(7, Range{Lo: 0, Hi: objs}); err == nil {
		t.Fatal("duplicate session id accepted")
	}
	if _, err := g.Connect(8, Range{Lo: 10, Hi: 10}); err == nil {
		t.Fatal("empty interest window accepted")
	}
	if _, err := g.Connect(8, Range{Lo: 0, Hi: objs + 1}); err == nil {
		t.Fatal("out-of-world interest window accepted")
	}
	s.Close()
	if _, err := g.Connect(7, Range{Lo: 0, Hi: objs}); err != nil {
		t.Fatalf("reconnect after close: %v", err)
	}
	if got := g.Sessions(); got != 1 {
		t.Fatalf("sessions = %d, want 1", got)
	}
}

func TestCanonicalOrderAndInterestFiltering(t *testing.T) {
	w, _ := memWorld(t)
	g := newTestGateway(t, Options{World: w})
	table := g.Table()
	cellsPerObj := uint32(table.CellsPerObject())

	// Two sessions with disjoint single-slot windows; connect out of ID
	// order to exercise the sorted insert.
	lo, err := g.Connect(2, Range{Lo: 0, Hi: 64})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := g.Connect(1, Range{Lo: 64, Hi: 128})
	if err != nil {
		t.Fatal(err)
	}

	// Session 2 writes into session 1's window and vice versa: each should
	// see only the updates landing in its own window, regardless of author.
	uLow := wal.Update{Cell: 3 * cellsPerObj, Value: 11}   // object 3, slot 0
	uHigh := wal.Update{Cell: 70 * cellsPerObj, Value: 22} // object 70, slot 1
	if err := lo.Submit([]wal.Update{uHigh}); err != nil {
		t.Fatal(err)
	}
	if err := hi.Submit([]wal.Update{uLow}); err != nil {
		t.Fatal(err)
	}

	batch, err := g.Step()
	if err != nil {
		t.Fatal(err)
	}
	// Canonical order: session 1's intents before session 2's.
	want := []wal.Update{uLow, uHigh}
	if len(batch) != 2 || batch[0] != want[0] || batch[1] != want[1] {
		t.Fatalf("canonical batch = %v, want %v", batch, want)
	}
	if err := g.AwaitDelivered(0, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	d := <-lo.Deltas()
	if d.Tick != 0 || len(d.Updates) != 1 || d.Updates[0] != uLow {
		t.Fatalf("low-window delta = %+v, want tick 0 %v", d, uLow)
	}
	d = <-hi.Deltas()
	if d.Tick != 0 || len(d.Updates) != 1 || d.Updates[0] != uHigh {
		t.Fatalf("high-window delta = %+v, want tick 0 %v", d, uHigh)
	}
	if st := g.Stats(); st.Ticks != 1 || st.Intents != 2 || st.Deltas != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSlowConsumerDropsOldestNotNewest(t *testing.T) {
	w, _ := memWorld(t)
	g := newTestGateway(t, Options{World: w, DeltaBuffer: 1})
	s, err := g.Connect(1, Range{Lo: 0, Hi: 64})
	if err != nil {
		t.Fatal(err)
	}
	for tick := uint64(0); tick < 3; tick++ {
		if err := s.Submit([]wal.Update{{Cell: 0, Value: uint32(tick) + 1}}); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
		if err := g.AwaitDelivered(tick, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 1, three ticks, nothing drained: two drops, newest survives.
	if got := s.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	d := <-s.Deltas()
	if d.Tick != 2 || d.Updates[0].Value != 3 {
		t.Fatalf("surviving delta = %+v, want tick 2 value 3", d)
	}
}

func TestSubmitBounds(t *testing.T) {
	w, _ := memWorld(t)
	g := newTestGateway(t, Options{World: w, MaxStaged: 2})
	s, err := g.Connect(1, Range{Lo: 0, Hi: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit([]wal.Update{{Cell: uint32(g.Table().NumCells()), Value: 1}}); err == nil {
		t.Fatal("out-of-world cell accepted")
	}
	if err := s.Submit([]wal.Update{{Cell: 0, Value: 1}, {Cell: 1, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit([]wal.Update{{Cell: 2, Value: 3}}); err == nil {
		t.Fatal("staging past MaxStaged accepted")
	}
	s.Close()
	if err := s.Submit([]wal.Update{{Cell: 0, Value: 1}}); err == nil {
		t.Fatal("submit on closed session accepted")
	}
}

// TestSessionCrashEquivalence is the acceptance property: a session-driven
// world — intents decomposed over clients, batched by the gateway, crashed
// mid-run, recovered — ends byte-identical to a trace-driven serial
// reference engine fed the same scenario.
func TestSessionCrashEquivalence(t *testing.T) {
	table := testTable()
	src, err := workload.New("hotspot", workload.Config{
		Table: table, UpdatesPerTick: 400, Ticks: 12, Skew: 0.8, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	e, err := engine.Open(engine.Options{Table: table, Dir: dir, Mode: engine.ModeCopyOnUpdate, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGateway(Options{World: EngineWorld{E: e}})
	if err != nil {
		t.Fatal(err)
	}
	drv, err := NewDriver(DriverConfig{Gateway: g, Clients: 32, Source: src, Profile: Steady, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		rep, err := drv.Tick()
		if err != nil {
			t.Fatal(err)
		}
		if rep.DroppedIntents != 0 {
			t.Fatalf("steady profile dropped %d intents", rep.DroppedIntents)
		}
	}
	g.Close()
	if err := e.Close(); err != nil { // the crash: no final checkpoint
		t.Fatal(err)
	}

	re, res, err := engine.RecoverFrom(engine.Options{Table: table, Dir: dir, Mode: engine.ModeCopyOnUpdate, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NextTick() != 8 {
		t.Fatalf("recovered to tick %d, want 8", re.NextTick())
	}
	_ = res

	// Trace-driven serial reference over the same 8 ticks.
	ref, err := engine.Open(engine.Options{Table: table, Mode: engine.ModeNone, InMemory: true, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	var cells []uint32
	var batch []wal.Update
	for tick := 0; tick < 8; tick++ {
		cells, batch = workload.TickUpdates(src, tick, cells, batch)
		if err := ref.ApplyTick(batch); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(re.Store().Slab(), ref.Store().Slab()) {
		t.Fatal("recovered session-driven world differs from trace-driven reference")
	}
}
