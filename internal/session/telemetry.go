package session

import "repro/internal/telemetry"

// Gateway runtime metrics (telemetry default registry, process-wide).
// session_intent_visible_ns is the gateway's end-to-end quantity: a tick
// batch's wall from being built out of staged intents (Step) to landing in
// the interested sessions' delta queues (fan-out) — the latency gatewaybench
// measures from the client's side, observed here from the inside.
var (
	telSessions      = telemetry.NewGauge("session_connected", "Currently connected gateway sessions.")
	telStagedIntents = telemetry.NewCounter("session_staged_intents_total", "Client intents accepted into session staging buffers.")
	telIntentVisible = telemetry.NewHistogram("session_intent_visible_ns", "Wall from a tick batch being built out of staged intents to its deltas landing in session queues, in nanoseconds.")
	telEvictions     = telemetry.NewCounter("session_evictions_total", "Deltas evicted or refused on full session queues (matches Stats.Dropped growth).")
)
