package session

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/wal"
	"repro/internal/workload"
)

// gatewayRun drives one independent gateway+driver instance over a fresh
// in-memory world and returns the wal-encoded canonical update set of every
// tick plus the final slab.
func gatewayRun(t *testing.T, profile Profile, seed int64, ticks int) (perTick [][]byte, slab []byte) {
	t.Helper()
	table := testTable()
	src, err := workload.New("flashcrowd", workload.Config{
		Table: table, UpdatesPerTick: 300, Ticks: ticks, Skew: 0.8, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.Open(engine.Options{Table: table, Mode: engine.ModeNone, InMemory: true, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	g, err := NewGateway(Options{World: EngineWorld{E: e}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	drv, err := NewDriver(DriverConfig{Gateway: g, Clients: 48, Source: src, Profile: profile, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ticks; i++ {
		rep, err := drv.Tick()
		if err != nil {
			t.Fatal(err)
		}
		perTick = append(perTick, wal.EncodeUpdates(nil, rep.Batch))
	}
	return perTick, append([]byte(nil), e.Store().Slab()...)
}

// TestTwoGatewaysAreByteIdentical is the session-layer determinism
// property: two gateway instances fed the same (seed, tick) client intents
// — including identical churn replay — produce byte-identical per-tick
// update sets and byte-identical final worlds, for every churn profile.
func TestTwoGatewaysAreByteIdentical(t *testing.T) {
	for _, profile := range Profiles() {
		t.Run(string(profile), func(t *testing.T) {
			const ticks = 16
			a, slabA := gatewayRun(t, profile, 99, ticks)
			b, slabB := gatewayRun(t, profile, 99, ticks)
			for i := range a {
				if !bytes.Equal(a[i], b[i]) {
					t.Fatalf("tick %d update sets differ between instances", i)
				}
			}
			if !bytes.Equal(slabA, slabB) {
				t.Fatal("final slabs differ between instances")
			}
		})
	}
}

// TestChurnActuallyChurns guards the profiles against degenerating into
// steady: the storm profiles must log sessions in and out over a run (and
// therefore drop some offline-owned intents), or the gatewaybench workloads
// measure nothing.
func TestChurnActuallyChurns(t *testing.T) {
	table := testTable()
	for _, profile := range []Profile{LoginStorm, ReconnectStorm} {
		t.Run(string(profile), func(t *testing.T) {
			src, err := workload.New("mixed", workload.Config{
				Table: table, UpdatesPerTick: 200, Ticks: 32, Skew: 0.8, Seed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			e, err := engine.Open(engine.Options{Table: table, Mode: engine.ModeNone, InMemory: true, Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			g, err := NewGateway(Options{World: EngineWorld{E: e}})
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			drv, err := NewDriver(DriverConfig{Gateway: g, Clients: 64, Source: src, Profile: profile, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			var logins, logouts, dropped int
			for i := 0; i < 32; i++ {
				rep, err := drv.Tick()
				if err != nil {
					t.Fatal(err)
				}
				if i > 0 { // skip the initial connect wave
					logins += rep.Logins
					logouts += rep.Logouts
				}
				dropped += rep.DroppedIntents
			}
			if logins == 0 || logouts == 0 {
				t.Fatalf("%s: %d logins, %d logouts after tick 0 — no churn", profile, logins, logouts)
			}
			if dropped == 0 {
				t.Fatalf("%s: no intents dropped for offline clients — population never shrank", profile)
			}
		})
	}
}

// TestOwnerOfPartitionsExactly checks the client span decomposition: every
// object has exactly one owning client and spans tile the object space.
func TestOwnerOfPartitionsExactly(t *testing.T) {
	table := testTable()
	e, err := engine.Open(engine.Options{Table: table, Mode: engine.ModeNone, InMemory: true, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	g, err := NewGateway(Options{World: EngineWorld{E: e}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, clients := range []int{1, 3, 32, 61} {
		src, _ := workload.New("hotspot", workload.Config{Table: table, UpdatesPerTick: 1, Ticks: 1, Seed: 1})
		drv, err := NewDriver(DriverConfig{Gateway: g, Clients: clients, Source: src})
		if err != nil {
			t.Fatal(err)
		}
		prevHi := 0
		for i := 0; i < clients; i++ {
			r := drv.span(i)
			if r.Lo != prevHi {
				t.Fatalf("clients=%d: span %d starts at %d, want %d", clients, i, r.Lo, prevHi)
			}
			prevHi = r.Hi
		}
		if prevHi != table.NumObjects() {
			t.Fatalf("clients=%d: spans end at %d, want %d", clients, prevHi, table.NumObjects())
		}
		for obj := 0; obj < table.NumObjects(); obj++ {
			i := drv.ownerOf(obj)
			if r := drv.span(i); obj < r.Lo || obj >= r.Hi {
				t.Fatalf("clients=%d: ownerOf(%d)=%d but span %v", clients, obj, i, r)
			}
		}
	}
}

// TestSteadyMatchesRawTrace pins the identity argument from the package
// doc: under the steady profile the session-driven world is byte-identical
// to feeding the raw scenario trace straight into a serial engine.
func TestSteadyMatchesRawTrace(t *testing.T) {
	table := testTable()
	const ticks = 10
	for _, scenario := range []string{"hotspot", "flashcrowd"} {
		t.Run(scenario, func(t *testing.T) {
			mk := func() workload.Source {
				src, err := workload.New(scenario, workload.Config{
					Table: table, UpdatesPerTick: 500, Ticks: ticks, Skew: 0.8, Seed: 11,
				})
				if err != nil {
					t.Fatal(err)
				}
				return src
			}
			e, err := engine.Open(engine.Options{Table: table, Mode: engine.ModeNone, InMemory: true, Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			g, err := NewGateway(Options{World: EngineWorld{E: e}})
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			drv, err := NewDriver(DriverConfig{Gateway: g, Clients: 25, Source: mk(), Profile: Steady})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < ticks; i++ {
				if _, err := drv.Tick(); err != nil {
					t.Fatal(err)
				}
			}

			ref, err := engine.Open(engine.Options{Table: table, Mode: engine.ModeNone, InMemory: true, Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			src := mk()
			var cells []uint32
			var batch []wal.Update
			for tick := 0; tick < ticks; tick++ {
				cells, batch = workload.TickUpdates(src, tick, cells, batch)
				if err := ref.ApplyTick(batch); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(e.Store().Slab(), ref.Store().Slab()) {
				t.Fatal(fmt.Sprintf("%s: session-driven slab differs from trace-driven reference", scenario))
			}
		})
	}
}
