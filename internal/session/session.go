// Package session is the connection tier in front of the tick engine: the
// piece a real MMO deployment puts between clients and authoritative state,
// and the piece the paper's evaluation leaves out (its updates all originate
// from in-process traces). The service-decomposition argument of the
// service-oriented-MMOG paper and the state-management survey (PAPERS.md)
// both place this layer — session handling, intent aggregation, interest
// management — in its own tier, and that is what this package builds:
//
//	clients ── intents ──► Gateway ── canonical tick batch ──► World (engine / cluster)
//	clients ◄── interest-managed deltas ── commit subscription ◄─┘
//
// A Gateway accepts many concurrent client sessions (in-process for the
// benchmarks and tests, TCP framed like internal/replication for real
// deployments), batches each tick's staged client intents into ONE
// deterministic update set, applies it through a World (a single engine or
// the multi-node cluster, which routes it through the partition map), and
// pushes each tick's changes back out filtered by area of interest: every
// session subscribes to a window of the object space at the cluster's
// 64-object slot grain, and receives only the updates that land in it.
//
// Determinism contract (the property the crash-equivalence harness rests
// on): the per-tick update set is the concatenation of the staged intents of
// all sessions in ascending session-ID order, each session's intents in
// submission order. Two gateways fed the same per-tick intents therefore
// build byte-identical update sets — and because one cell always belongs to
// one object, and intents for one object come from one client, per-cell
// update order in the canonical set equals per-client submission order. A
// session-driven world is byte-identical to a trace-driven one whenever the
// trace is decomposed into per-client intents (see Driver).
package session

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/gamestate"
	"repro/internal/wal"
)

// World is the authoritative state a gateway fronts: something that applies
// one tick's update batch and exposes the tick-commit subscription the delta
// fan-out rides. EngineWorld and ClusterWorld adapt the two deployments.
type World interface {
	// Table is the state geometry client intents address.
	Table() gamestate.Table
	// Tick applies one update batch as the next world tick.
	Tick(batch []wal.Update) error
	// NextTick is the tick the next Tick call will apply.
	NextTick() uint64
	// SubscribeCommits returns a coalescing channel of committed ticks and a
	// cancel function (engine.TickSub / cluster.CommitSub semantics: the
	// channel holds at most the newest committed tick).
	SubscribeCommits() (commits <-chan uint64, cancel func())
}

// EngineWorld fronts a single engine: ticks apply through
// ApplyTickParallel and the delta fan-out rides engine.SubscribeCommits.
type EngineWorld struct {
	E *engine.Engine
}

// Table implements World.
func (w EngineWorld) Table() gamestate.Table { return w.E.Table() }

// Tick implements World.
func (w EngineWorld) Tick(batch []wal.Update) error { return w.E.ApplyTickParallel(batch) }

// NextTick implements World.
func (w EngineWorld) NextTick() uint64 { return w.E.NextTick() }

// SubscribeCommits implements World.
func (w EngineWorld) SubscribeCommits() (<-chan uint64, func()) {
	s := w.E.SubscribeCommits()
	return s.C, s.Close
}

// ClusterWorld fronts a multi-node cluster: ticks route through the
// partition map to their owner nodes behind the tick barrier, and the delta
// fan-out rides cluster.SubscribeCommits.
type ClusterWorld struct {
	C *cluster.Cluster
}

// Table implements World.
func (w ClusterWorld) Table() gamestate.Table { return w.C.Table() }

// Tick implements World.
func (w ClusterWorld) Tick(batch []wal.Update) error { return w.C.Tick(batch) }

// NextTick implements World.
func (w ClusterWorld) NextTick() uint64 { return w.C.NextTick() }

// SubscribeCommits implements World.
func (w ClusterWorld) SubscribeCommits() (<-chan uint64, func()) {
	s := w.C.SubscribeCommits()
	return s.C, s.Close
}

// Range is a half-open object range [Lo, Hi): a session's area of interest,
// or the span of objects a simulated client controls.
type Range struct {
	Lo, Hi int
}

// Delta is one tick's worth of changes inside a session's interest window:
// the updates of the committed tick whose objects fall in the window, in
// canonical batch order. Values are final cell states, so a dropped delta is
// healed by any later delta touching the same cells.
type Delta struct {
	Tick    uint64
	Updates []wal.Update
}

// Options configures a Gateway.
type Options struct {
	// World is the authoritative state to front. Required.
	World World
	// MaxStaged bounds the intents one session may stage between ticks;
	// Submit fails beyond it (a misbehaving client must not grow the tick
	// batch without bound). Default 1 << 14.
	MaxStaged int
	// DeltaBuffer is each session's delta queue capacity. When a slow
	// consumer fills it the oldest delta is dropped and counted — the world
	// tick must never block on one client. Default 256.
	DeltaBuffer int
}

// Stats aggregates gateway activity.
type Stats struct {
	// Ticks is the number of Step calls that committed.
	Ticks uint64
	// Intents is the total updates batched into committed ticks.
	Intents uint64
	// Deltas is the total deltas delivered into session queues.
	Deltas uint64
	// Dropped is the total deltas dropped on full session queues.
	Dropped uint64
}

// pendingTick is one built-and-submitted tick awaiting delta fan-out.
type pendingTick struct {
	tick   uint64
	batch  []wal.Update
	staged time.Time
}

// Gateway is the connection tier: it owns the session set, builds each
// tick's canonical update set, drives the world, and fans interest-managed
// deltas back out on the world's commit signal. One goroutine calls Step
// (the tick loop); Connect/Submit/Close are safe from any goroutine.
type Gateway struct {
	opts        Options
	world       World
	table       gamestate.Table
	cellsPerObj uint32

	mu       sync.Mutex
	sessions []*Session // ascending ID: the canonical batch order
	byID     map[uint64]*Session
	interest *interestIndex

	pendMu  sync.Mutex
	pending []pendingTick

	commits <-chan uint64
	cancel  func()
	stop    chan struct{}
	done    chan struct{}

	// delivered is the fan-out watermark: ticks [0, delivered) have been
	// fanned out to every interested session queue. waitCh is replaced (and
	// the old one closed) on every advance — a broadcast AwaitDelivered can
	// select on with a deadline.
	wMu       sync.Mutex
	delivered uint64
	waitCh    chan struct{}

	ticks   atomic.Uint64
	intents atomic.Uint64
	deltas  atomic.Uint64
	dropped atomic.Uint64

	closed bool
}

// NewGateway opens a gateway over a world and starts its delta fan-out pump.
func NewGateway(opts Options) (*Gateway, error) {
	if opts.World == nil {
		return nil, errors.New("session: Options.World required")
	}
	if opts.MaxStaged <= 0 {
		opts.MaxStaged = 1 << 14
	}
	if opts.DeltaBuffer <= 0 {
		opts.DeltaBuffer = 256
	}
	table := opts.World.Table()
	if err := table.Validate(); err != nil {
		return nil, err
	}
	g := &Gateway{
		opts:        opts,
		world:       opts.World,
		table:       table,
		cellsPerObj: uint32(table.CellsPerObject()),
		byID:        map[uint64]*Session{},
		interest:    newInterestIndex(table.NumObjects()),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		waitCh:      make(chan struct{}),
		delivered:   opts.World.NextTick(), // a recovered world owes no old deltas
	}
	g.commits, g.cancel = opts.World.SubscribeCommits()
	go g.pump()
	return g, nil
}

// Table returns the world geometry client intents address.
func (g *Gateway) Table() gamestate.Table { return g.table }

// Sessions returns the number of connected sessions.
func (g *Gateway) Sessions() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.sessions)
}

// Stats returns a snapshot of the gateway's counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Ticks:   g.ticks.Load(),
		Intents: g.intents.Load(),
		Deltas:  g.deltas.Load(),
		Dropped: g.dropped.Load(),
	}
}

// Connect registers a session: id is its canonical ordering key (unique
// among live sessions; a reconnect reuses the id after Close), interest the
// object window its deltas are filtered to. The window is bucketed at the
// cluster partition grain (cluster.SlotSize objects), so interest slots and
// partition slots are the same unit.
func (g *Gateway) Connect(id uint64, interest Range) (*Session, error) {
	if interest.Lo < 0 || interest.Hi > g.table.NumObjects() || interest.Lo >= interest.Hi {
		return nil, fmt.Errorf("session: interest [%d,%d) outside the %d-object world",
			interest.Lo, interest.Hi, g.table.NumObjects())
	}
	s := &Session{
		id:       id,
		gw:       g,
		interest: interest,
		deltas:   make(chan Delta, g.opts.DeltaBuffer),
		gone:     make(chan struct{}),
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, errors.New("session: gateway closed")
	}
	if _, dup := g.byID[id]; dup {
		return nil, fmt.Errorf("session: id %d already connected", id)
	}
	g.byID[id] = s
	i := sort.Search(len(g.sessions), func(i int) bool { return g.sessions[i].id >= id })
	g.sessions = append(g.sessions, nil)
	copy(g.sessions[i+1:], g.sessions[i:])
	g.sessions[i] = s
	g.interest.add(s)
	telSessions.Set(int64(len(g.sessions)))
	return s, nil
}

// Step builds and applies one world tick: drain every session's staged
// intents in canonical order (ascending session ID, submission order within
// a session) into one batch, apply it through the world, and hand the batch
// to the delta pump. It returns the canonical update set — callers feeding a
// reference engine may read it but must not modify it (the pump shares it).
// Call Step from one tick-loop goroutine.
func (g *Gateway) Step() ([]wal.Update, error) {
	g.mu.Lock()
	n := 0
	for _, s := range g.sessions {
		n += len(s.staged)
	}
	batch := make([]wal.Update, 0, n)
	for _, s := range g.sessions {
		batch = append(batch, s.staged...)
		s.staged = s.staged[:0]
	}
	g.mu.Unlock()

	tick := g.world.NextTick()
	// Queue before Tick: the commit signal must find the batch pending even
	// if it outraces Tick's return.
	g.pendMu.Lock()
	g.pending = append(g.pending, pendingTick{tick: tick, batch: batch, staged: time.Now()})
	g.pendMu.Unlock()
	if err := g.world.Tick(batch); err != nil {
		g.pendMu.Lock()
		if len(g.pending) > 0 && g.pending[len(g.pending)-1].tick == tick {
			g.pending = g.pending[:len(g.pending)-1]
		}
		g.pendMu.Unlock()
		return nil, err
	}
	g.ticks.Add(1)
	g.intents.Add(uint64(len(batch)))
	return batch, nil
}

// pump is the delta fan-out loop: woken by the world's coalescing commit
// signal, it fans out every pending tick up to the signaled one, then
// advances the delivered watermark.
func (g *Gateway) pump() {
	defer close(g.done)
	for {
		select {
		case <-g.stop:
			return
		case tick := <-g.commits:
			g.fanOutThrough(tick)
		}
	}
}

// fanOutThrough fans out every pending tick at or below tick, in order.
func (g *Gateway) fanOutThrough(tick uint64) {
	for {
		g.pendMu.Lock()
		if len(g.pending) == 0 || g.pending[0].tick > tick {
			g.pendMu.Unlock()
			return
		}
		p := g.pending[0]
		copy(g.pending, g.pending[1:])
		g.pending = g.pending[:len(g.pending)-1]
		g.pendMu.Unlock()
		g.fanOut(p)
	}
}

// fanOut delivers one committed tick's updates to every session whose
// interest window they touch, one Delta per (session, tick).
func (g *Gateway) fanOut(p pendingTick) {
	g.mu.Lock()
	var touched []*Session
	for _, u := range p.batch {
		slot := int(u.Cell/g.cellsPerObj) >> cluster.SlotShift
		for _, s := range g.interest.at(slot) {
			if s.mark != p.tick+1 { // +1: zero value must not match tick 0
				s.mark = p.tick + 1
				touched = append(touched, s)
			}
			s.pend = append(s.pend, u)
		}
	}
	var delivered, dropped uint64
	for _, s := range touched {
		d := Delta{Tick: p.tick, Updates: append([]wal.Update(nil), s.pend...)}
		s.pend = s.pend[:0]
		if s.deliver(d) {
			delivered++
		} else {
			dropped++
		}
	}
	g.mu.Unlock()
	g.deltas.Add(delivered)
	g.dropped.Add(dropped)
	if dropped > 0 {
		telEvictions.Add(dropped)
	}
	telIntentVisible.ObserveSince(p.staged)

	g.wMu.Lock()
	g.delivered = p.tick + 1
	close(g.waitCh)
	g.waitCh = make(chan struct{})
	g.wMu.Unlock()
}

// Delivered returns the fan-out watermark: every tick below it has been
// fanned out to all interested session queues.
func (g *Gateway) Delivered() uint64 {
	g.wMu.Lock()
	defer g.wMu.Unlock()
	return g.delivered
}

// AwaitDelivered blocks until tick has been fanned out (Delivered > tick) or
// the timeout expires. It is how a driver measures intent→visible latency:
// stage, Step, AwaitDelivered — the elapsed wall is the full pipeline from
// intent to the delta landing in every interested session's queue.
func (g *Gateway) AwaitDelivered(tick uint64, timeout time.Duration) error {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		g.wMu.Lock()
		done := g.delivered > tick
		ch := g.waitCh
		g.wMu.Unlock()
		if done {
			return nil
		}
		select {
		case <-ch:
		case <-deadline.C:
			return fmt.Errorf("session: tick %d not delivered within %v (watermark %d)",
				tick, timeout, g.Delivered())
		}
	}
}

// Close cancels the commit subscription, stops the delta pump, and
// disconnects every session. The world itself stays open — its owner closes
// it (and a cluster crash-equivalence run closes it as a crash).
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	sessions := append([]*Session(nil), g.sessions...)
	g.mu.Unlock()
	g.cancel()
	close(g.stop)
	<-g.done
	for _, s := range sessions {
		s.Close()
	}
	return nil
}

// Session is one connected client: staged intents in, interest-managed
// deltas out.
type Session struct {
	id       uint64
	gw       *Gateway
	interest Range

	// staged/pend/mark are guarded by gw.mu. pend accumulates the session's
	// share of the tick during fan-out; mark dedupes it per tick.
	staged []wal.Update
	pend   []wal.Update
	mark   uint64

	deltas  chan Delta
	gone    chan struct{} // closed on Close: unblocks delta consumers
	dropped atomic.Uint64
	once    sync.Once
}

// ID returns the session's canonical ordering key.
func (s *Session) ID() uint64 { return s.id }

// Interest returns the session's area-of-interest object window.
func (s *Session) Interest() Range { return s.interest }

// Submit stages intents for the next tick, in order, after the intents this
// session already staged. Cells must address the world's table.
func (s *Session) Submit(intents []wal.Update) error {
	numCells := uint32(s.gw.table.NumCells())
	for _, u := range intents {
		if u.Cell >= numCells {
			return fmt.Errorf("session %d: intent cell %d outside the %d-cell world", s.id, u.Cell, numCells)
		}
	}
	s.gw.mu.Lock()
	defer s.gw.mu.Unlock()
	select {
	case <-s.gone:
		return fmt.Errorf("session %d: closed", s.id)
	default:
	}
	if len(s.staged)+len(intents) > s.gw.opts.MaxStaged {
		return fmt.Errorf("session %d: staging %d intents exceeds the %d bound",
			s.id, len(s.staged)+len(intents), s.gw.opts.MaxStaged)
	}
	s.staged = append(s.staged, intents...)
	telStagedIntents.Add(uint64(len(intents)))
	return nil
}

// Deltas returns the session's delta queue. Consume it promptly: when the
// queue is full the oldest delta is dropped (and counted in Dropped) so the
// world tick never blocks on a slow client.
func (s *Session) Deltas() <-chan Delta { return s.deltas }

// Gone is closed when the session disconnects; consumers select on it
// alongside Deltas.
func (s *Session) Gone() <-chan struct{} { return s.gone }

// Dropped returns how many deltas were dropped on this session's full queue.
func (s *Session) Dropped() uint64 { return s.dropped.Load() }

// deliver enqueues a delta, dropping the oldest on a full queue. Called
// under gw.mu from the pump. Reports whether d itself was enqueued.
func (s *Session) deliver(d Delta) bool {
	select {
	case <-s.gone:
		return false
	default:
	}
	select {
	case s.deltas <- d:
		return true
	default:
	}
	select {
	case <-s.deltas: // evict the oldest: newest state wins
		s.dropped.Add(1)
	default:
	}
	select {
	case s.deltas <- d:
		return true
	default:
		s.dropped.Add(1)
		return false
	}
}

// Close disconnects the session: it leaves the interest index and the
// canonical order, unstaged intents are discarded, and Gone is closed.
// Closing twice is a no-op; a new Connect may then reuse the ID.
func (s *Session) Close() {
	s.once.Do(func() {
		g := s.gw
		g.mu.Lock()
		if g.byID[s.id] == s {
			delete(g.byID, s.id)
			i := sort.Search(len(g.sessions), func(i int) bool { return g.sessions[i].id >= s.id })
			if i < len(g.sessions) && g.sessions[i] == s {
				g.sessions = append(g.sessions[:i], g.sessions[i+1:]...)
			}
			g.interest.remove(s)
			telSessions.Set(int64(len(g.sessions)))
		}
		s.staged = nil
		close(s.gone)
		g.mu.Unlock()
	})
}
