package session

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Profile names a session churn pattern the driver replays: which clients
// are online at each tick. Churn is deterministic in (profile, seed, tick
// history), so two drivers with the same config replay the same logins,
// logouts, and therefore the same per-tick intent sets.
type Profile string

const (
	// Steady keeps every client online from tick 0: the baseline, and the
	// profile whose session-driven world is byte-identical to feeding the
	// raw scenario trace straight into the engine.
	Steady Profile = "steady"
	// LoginStorm starts with a quarter of the clients online and logs the
	// rest in, in bursty waves, with a trickle of logouts — the launch-day
	// pattern the gateway's connect path has to absorb.
	LoginStorm Profile = "loginstorm"
	// ReconnectStorm periodically disconnects a large block of clients at
	// once and reconnects them over the following ticks — the pattern after
	// a network partition or a gateway restart.
	ReconnectStorm Profile = "reconnect"
)

// Profiles returns every driver churn profile, in presentation order.
func Profiles() []Profile { return []Profile{Steady, LoginStorm, ReconnectStorm} }

// DriverConfig configures a simulated-client Driver.
type DriverConfig struct {
	// Gateway is the gateway under test. Required.
	Gateway *Gateway
	// Clients is the simulated client population. Each client owns a
	// contiguous span of the object space (span i of Clients equal cuts) and
	// originates exactly the scenario updates that land in its span, so the
	// union of all online clients' intents is the scenario trace minus the
	// offline spans. Required, at least 1.
	Clients int
	// Source is the workload scenario whose per-tick cells the clients
	// replay as intents. Required.
	Source workload.Source
	// AOISlots widens each client's area of interest beyond its own span by
	// this many partition slots on each side — clients see their neighbors'
	// updates, the interest-management load multiplier. Default 1.
	AOISlots int
	// Profile is the churn pattern. Default Steady.
	Profile Profile
	// Seed salts the churn RNG (mixed with the profile name), independent of
	// the scenario seed.
	Seed int64
}

// TickReport is what one driver tick observed.
type TickReport struct {
	// Tick is the world tick this report covers.
	Tick uint64
	// Online is the session count after this tick's churn.
	Online int
	// Logins and Logouts count this tick's churn events.
	Logins, Logouts int
	// Intents is the size of the canonical batch this tick committed.
	Intents int
	// DroppedIntents counts scenario updates discarded because their owning
	// client was offline.
	DroppedIntents int
	// Deltas counts deltas drained from session queues this tick.
	Deltas int
	// Latency is the intent→visible wall time: from staging the first intent
	// to the tick's deltas landing in every interested session queue.
	Latency time.Duration
	// Batch is the tick's canonical update set, shared with the gateway —
	// read-only. A reference world can be fed from it directly.
	Batch []wal.Update
}

// Driver simulates a client population against a gateway: per tick it
// replays churn, decomposes the scenario tick into per-client intents,
// submits them, steps the world, and waits for the deltas to come back.
// It is the in-process counterpart of cmd/gateway's TCP swarm — same
// decomposition, no sockets — and the load generator gatewaybench runs.
type Driver struct {
	cfg     DriverConfig
	gw      *Gateway
	objects int
	salt    uint64

	online   []bool
	sessions []*Session
	tick     uint64
	start    uint64 // the driver's first tick: when the initial connect wave runs

	cells []uint32
	batch []wal.Update
	per   [][]wal.Update
}

// NewDriver builds a driver; no clients are connected until the first Tick
// runs the profile's churn (Steady connects everyone at tick 0).
func NewDriver(cfg DriverConfig) (*Driver, error) {
	if cfg.Gateway == nil {
		return nil, fmt.Errorf("session: DriverConfig.Gateway required")
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("session: DriverConfig.Source required")
	}
	if cfg.Clients < 1 {
		return nil, fmt.Errorf("session: %d clients", cfg.Clients)
	}
	objects := cfg.Gateway.Table().NumObjects()
	if cfg.Clients > objects {
		return nil, fmt.Errorf("session: %d clients over %d objects (at most one client per object)", cfg.Clients, objects)
	}
	if cfg.AOISlots == 0 {
		cfg.AOISlots = 1
	}
	if cfg.Profile == "" {
		cfg.Profile = Steady
	}
	switch cfg.Profile {
	case Steady, LoginStorm, ReconnectStorm:
	default:
		return nil, fmt.Errorf("session: unknown profile %q (have %v)", cfg.Profile, Profiles())
	}
	h := fnv.New64a()
	h.Write([]byte(cfg.Profile))
	return &Driver{
		cfg:      cfg,
		gw:       cfg.Gateway,
		objects:  objects,
		salt:     h.Sum64(),
		online:   make([]bool, cfg.Clients),
		sessions: make([]*Session, cfg.Clients),
		per:      make([][]wal.Update, cfg.Clients),
		tick:     cfg.Gateway.world.NextTick(),
		start:    cfg.Gateway.world.NextTick(),
	}, nil
}

// span returns client i's owned object range: cut i of Clients equal cuts.
func (d *Driver) span(i int) Range {
	c := d.cfg.Clients
	return Range{Lo: i * d.objects / c, Hi: (i + 1) * d.objects / c}
}

// ownerOf returns the client owning an object.
func (d *Driver) ownerOf(obj int) int {
	i := obj * d.cfg.Clients / d.objects
	for i+1 < d.cfg.Clients && obj >= d.span(i+1).Lo {
		i++
	}
	for i > 0 && obj < d.span(i).Lo {
		i--
	}
	return i
}

// aoi returns client i's interest window: its span widened by AOISlots
// partition slots each side, clamped to the world.
func (d *Driver) aoi(i int) Range {
	r := d.span(i)
	r.Lo -= d.cfg.AOISlots * cluster.SlotSize
	r.Hi += d.cfg.AOISlots * cluster.SlotSize
	if r.Lo < 0 {
		r.Lo = 0
	}
	if r.Hi > d.objects {
		r.Hi = d.objects
	}
	return r
}

// rng returns tick t's churn RNG: the workload substream recipe
// (SplitMix64 over seed, profile salt, tick) so churn, like the scenarios,
// is a deterministic function of configuration.
func (d *Driver) rng(t uint64) *rand.Rand {
	x := uint64(d.cfg.Seed)*0x9E3779B97F4A7C15 + d.salt + t + 1
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return rand.New(rand.NewSource(int64(x >> 1)))
}

// login connects client i (idempotent).
func (d *Driver) login(i int) (ok bool, err error) {
	if d.online[i] {
		return false, nil
	}
	s, err := d.gw.Connect(uint64(i), d.aoi(i))
	if err != nil {
		return false, err
	}
	d.online[i] = true
	d.sessions[i] = s
	return true, nil
}

// logout disconnects client i (idempotent).
func (d *Driver) logout(i int) bool {
	if !d.online[i] {
		return false
	}
	d.sessions[i].Close()
	d.online[i] = false
	d.sessions[i] = nil
	return true
}

// churn replays tick t's profile events. The churn sequence is incremental —
// each tick's events depend on the online set the previous ticks built — so
// it is a pure function of (profile, seed) only when replayed from the
// driver's first tick, which is how every driver runs.
func (d *Driver) churn(t uint64) (logins, logouts int, err error) {
	c := d.cfg.Clients
	first := t == d.start
	switch d.cfg.Profile {
	case Steady:
		if first {
			for i := 0; i < c; i++ {
				ok, err := d.login(i)
				if err != nil {
					return logins, logouts, err
				}
				if ok {
					logins++
				}
			}
		}
	case LoginStorm:
		rng := d.rng(t)
		if first {
			for i := 0; i < c/4; i++ {
				if ok, err := d.login(i); err != nil {
					return logins, logouts, err
				} else if ok {
					logins++
				}
			}
			break
		}
		// A wave every ~4 ticks logs in up to an eighth of the population,
		// scanning from a random start; every tick a small random set logs out.
		if rng.Intn(4) == 0 {
			want := 1 + rng.Intn(c/8+1)
			start := rng.Intn(c)
			for k := 0; k < c && want > 0; k++ {
				i := (start + k) % c
				if !d.online[i] {
					if _, err := d.login(i); err != nil {
						return logins, logouts, err
					}
					logins++
					want--
				}
			}
		}
		for k := 0; k < c/64+1; k++ {
			if d.logout(rng.Intn(c)) {
				logouts++
			}
		}
	case ReconnectStorm:
		rng := d.rng(t)
		if first {
			for i := 0; i < c; i++ {
				if ok, err := d.login(i); err != nil {
					return logins, logouts, err
				} else if ok {
					logins++
				}
			}
			break
		}
		// Every ~8 ticks a contiguous block of ~60% of the population drops
		// at once; otherwise up to a quarter of the disconnected reconnect.
		if rng.Intn(8) == 0 {
			start := rng.Intn(c)
			for k := 0; k < c*3/5; k++ {
				if d.logout((start + k) % c) {
					logouts++
				}
			}
		} else {
			want := c/4 + 1
			for i := 0; i < c && want > 0; i++ {
				if !d.online[i] {
					if _, err := d.login(i); err != nil {
						return logins, logouts, err
					}
					logins++
					want--
				}
			}
		}
	}
	return logins, logouts, nil
}

// Tick runs one driver tick: churn, decompose the scenario tick into
// per-client intents (per-cell order preserved: one cell → one object → one
// owning client, and each client submits its intents in scenario order),
// submit, step the world, and await delta delivery. The scenario tick index
// equals the world tick, so a driver over a recovered world resumes the
// trace where the crash cut it.
func (d *Driver) Tick() (TickReport, error) {
	t := d.tick
	rep := TickReport{Tick: t}
	var err error
	rep.Logins, rep.Logouts, err = d.churn(t)
	if err != nil {
		return rep, err
	}
	for _, on := range d.online {
		if on {
			rep.Online++
		}
	}

	start := time.Now()
	d.cells, d.batch = workload.TickUpdates(d.cfg.Source, int(t), d.cells, d.batch)
	for i := range d.per {
		d.per[i] = d.per[i][:0]
	}
	cellsPerObj := uint32(d.gw.Table().CellsPerObject())
	for _, u := range d.batch {
		i := d.ownerOf(int(u.Cell / cellsPerObj))
		if !d.online[i] {
			rep.DroppedIntents++
			continue
		}
		d.per[i] = append(d.per[i], u)
	}
	for i, intents := range d.per {
		if len(intents) == 0 {
			continue
		}
		if err := d.sessions[i].Submit(intents); err != nil {
			return rep, err
		}
	}

	batch, err := d.gw.Step()
	if err != nil {
		return rep, err
	}
	if err := d.gw.AwaitDelivered(t, 10*time.Second); err != nil {
		return rep, err
	}
	rep.Latency = time.Since(start)
	rep.Intents = len(batch)
	rep.Batch = batch

	for i, s := range d.sessions {
		if !d.online[i] {
			continue
		}
		for {
			select {
			case <-s.Deltas():
				rep.Deltas++
				continue
			default:
			}
			break
		}
	}
	d.tick++
	return rep, nil
}

// Online returns how many clients are currently connected.
func (d *Driver) Online() int {
	n := 0
	for _, on := range d.online {
		if on {
			n++
		}
	}
	return n
}

// Close disconnects every client.
func (d *Driver) Close() {
	for i := range d.online {
		d.logout(i)
	}
}
