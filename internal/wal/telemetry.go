package wal

import "repro/internal/telemetry"

// WAL runtime metrics (telemetry default registry, process-wide across
// every open log). Append and Sync only call time.Now while telemetry is
// enabled, so the disabled tick path keeps its exact instruction count.
var (
	telAppend      = telemetry.NewHistogram("wal_append_ns", "Latency of one logical-log record append (buffered write, no fsync), in nanoseconds.")
	telFsync       = telemetry.NewHistogram("wal_fsync_ns", "Latency of one logical-log Sync (buffer flush + fsync), in nanoseconds.")
	telAppendBytes = telemetry.NewCounter("wal_append_bytes_total", "Bytes appended to logical logs, framing included.")
)
