package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// tailDrain pulls every immediately-available record off a TailReader.
func tailDrain(t *testing.T, tr *TailReader) (ticks []uint64, payloads []string) {
	t.Helper()
	for {
		tick, payload, ok, err := tr.TryNext()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return ticks, payloads
		}
		ticks = append(ticks, tick)
		payloads = append(payloads, string(payload))
	}
}

// tailNext polls TryNext until a record arrives or the deadline passes.
func tailNext(t *testing.T, tr *TailReader, deadline time.Duration) (uint64, string) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		tick, payload, ok, err := tr.TryNext()
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			return tick, string(payload)
		}
		if time.Now().After(stop) {
			t.Fatal("tail reader saw no record before deadline")
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestTailFollowConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const records = 400
	done := make(chan error, 1)
	go func() {
		for tick := uint64(0); tick < records; tick++ {
			if err := l.Append(tick, []byte(fmt.Sprintf("payload-%d", tick))); err != nil {
				done <- err
				return
			}
			// Flush is the tail-visibility barrier (the engine flushes at
			// every tick while a shipper is subscribed).
			if err := l.Flush(); err != nil {
				done <- err
				return
			}
			// Rotate occasionally so the reader follows live segment churn.
			if tick%97 == 96 {
				if err := l.Rotate(tick + 1); err != nil {
					done <- err
					return
				}
			}
		}
		done <- nil
	}()

	tr := NewTailReader(filepath.Join(dir), 0)
	defer tr.Close()
	for want := uint64(0); want < records; want++ {
		tick, payload := tailNext(t, tr, 10*time.Second)
		if tick != want {
			t.Fatalf("tail returned tick %d, want %d", tick, want)
		}
		if payload != fmt.Sprintf("payload-%d", want) {
			t.Fatalf("tick %d payload %q", tick, payload)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if ticks, _ := tailDrain(t, tr); len(ticks) != 0 {
		t.Fatalf("tail returned %d extra records", len(ticks))
	}
}

// TestTailTornFrameInvisible writes a frame in two halves directly to the
// segment file: the reader must return nothing until the second half lands,
// then the whole record — never a torn read.
func TestTailTornFrameInvisible(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(0))

	body := make([]byte, 8+5)
	binary.LittleEndian.PutUint64(body, 7)
	copy(body[8:], "hello")
	frame := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body))
	copy(frame[8:], body)

	tr := NewTailReader(dir, 0)
	defer tr.Close()
	if _, _, ok, err := tr.TryNext(); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}

	for cut := 1; cut < len(frame); cut += 6 {
		if err := os.WriteFile(path, frame[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok, err := tr.TryNext(); ok || err != nil {
			t.Fatalf("cut %d: torn frame visible: ok=%v err=%v", cut, ok, err)
		}
	}
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	tick, payload, ok, err := tr.TryNext()
	if err != nil || !ok || tick != 7 || string(payload) != "hello" {
		t.Fatalf("complete frame: tick=%d payload=%q ok=%v err=%v", tick, payload, ok, err)
	}
}

func TestTailFollowsRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tr := NewTailReader(dir, 0)
	defer tr.Close()

	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.Append(0, []byte("a")))
	must(l.Flush())
	if tick, p := tailNext(t, tr, time.Second); tick != 0 || p != "a" {
		t.Fatalf("got %d %q", tick, p)
	}
	// Catch up fully, then rotate: the reader is parked at the live tail of
	// the now-sealed segment and must hop to the successor.
	if ticks, _ := tailDrain(t, tr); len(ticks) != 0 {
		t.Fatal("unexpected extra records")
	}
	must(l.Rotate(1))
	must(l.Append(1, []byte("b")))
	must(l.Flush())
	if tick, p := tailNext(t, tr, time.Second); tick != 1 || p != "b" {
		t.Fatalf("after rotation got %d %q", tick, p)
	}
}

// TestTailSkipsSealedSegmentsBelowFrom verifies the from hint skips whole
// sealed segments (their records all precede the successor's start tick)
// and that segments pruned mid-follow are skipped, not an error.
func TestTailSkipsSealedSegmentsBelowFrom(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for tick := uint64(0); tick < 30; tick++ {
		must(l.Append(tick, []byte{byte(tick)}))
		if tick%10 == 9 {
			must(l.Rotate(tick + 1))
		}
	}
	must(l.Flush())

	// from=25: segments [0,10) and [10,20) are skippable, 20+ is not.
	tr := NewTailReader(dir, 25)
	defer tr.Close()
	ticks, _ := tailDrain(t, tr)
	if len(ticks) == 0 || ticks[0] != 20 {
		t.Fatalf("tail started at %v, want first tick 20", ticks)
	}
	if ticks[len(ticks)-1] != 29 {
		t.Fatalf("tail ended at %d, want 29", ticks[len(ticks)-1])
	}

	// A reader parked before pruned segments skips them silently.
	tr2 := NewTailReader(dir, 0)
	defer tr2.Close()
	must(l.Prune(20))
	ticks2, _ := tailDrain(t, tr2)
	if len(ticks2) == 0 || ticks2[0] != 20 {
		t.Fatalf("post-prune tail started at %v, want 20", ticks2)
	}
}

// TestTailSealedCorruptionIsSticky: garbage in the middle of a sealed
// segment is an error (durably acknowledged records must never be skipped),
// and the error repeats.
func TestTailSealedCorruptionIsSticky(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.Append(0, []byte("aaaa")))
	must(l.Append(1, []byte("bbbb")))
	must(l.Rotate(2))
	must(l.Append(2, []byte("cccc")))
	must(l.Flush())

	// Flip a byte inside the second record of the sealed first segment.
	path := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	must(os.WriteFile(path, data, 0o644))

	tr := NewTailReader(dir, 0)
	defer tr.Close()
	if tick, _, ok, err := tr.TryNext(); err != nil || !ok || tick != 0 {
		t.Fatalf("first record: tick=%d ok=%v err=%v", tick, ok, err)
	}
	_, _, _, err = tr.TryNext()
	if err == nil {
		t.Fatal("sealed-segment corruption not reported")
	}
	if _, _, _, err2 := tr.TryNext(); err2 != err {
		t.Fatalf("error not sticky: %v then %v", err, err2)
	}
}

// TestTailMatchesReaderOnQuiescentLog: on a sealed, quiescent log the tail
// reader returns exactly the record sequence of the batch Reader.
func TestTailMatchesReaderOnQuiescentLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for tick := uint64(0); tick < 50; tick++ {
		if err := l.Append(tick, []byte(fmt.Sprintf("p%d", tick))); err != nil {
			t.Fatal(err)
		}
		if tick == 20 || tick == 40 {
			if err := l.Rotate(tick + 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantTicks, wantPayloads := readAll(t, r)
	r.Close()

	tr := NewTailReader(dir, 0)
	defer tr.Close()
	gotTicks, gotPayloads := tailDrain(t, tr)
	if len(gotTicks) != len(wantTicks) {
		t.Fatalf("tail saw %d records, reader %d", len(gotTicks), len(wantTicks))
	}
	for i := range wantTicks {
		if gotTicks[i] != wantTicks[i] || gotPayloads[i] != wantPayloads[i] {
			t.Fatalf("record %d: tail (%d,%q) reader (%d,%q)",
				i, gotTicks[i], gotPayloads[i], wantTicks[i], wantPayloads[i])
		}
	}
}
