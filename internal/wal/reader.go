package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Reader iterates the log's records in order across all segments, one record
// per Next call. It owns its file handles and touches no Log state, so any
// number of Readers may scan one directory concurrently (the recovery
// pipeline reads the log while restore workers stream the backup image), and
// a Reader may run alongside an open Log as long as the writer is quiescent —
// Log.NewReader flushes buffered appends to guarantee that.
//
// Tail semantics match Log.Replay: a torn or corrupt tail in the final
// segment silently ends the scan (those ticks were never acknowledged as
// durable); corruption inside a sealed segment is reported as an error.
type Reader struct {
	dir    string
	starts []uint64
	seg    int // index into starts of the open segment; len(starts) when done
	f      *os.File
	br     *bufio.Reader
	off    int64 // valid bytes consumed in the open segment
	err    error // sticky: a corrupt log never silently resumes
}

// NewReader opens a reader over the segments currently in dir.
func NewReader(dir string) (*Reader, error) {
	starts, err := segments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Reader{dir: dir, starts: starts}, nil
}

// NewReader flushes buffered appends and opens a reader over the log's
// current segments. The caller must not append while the reader is in use.
func (l *Log) NewReader() (*Reader, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	if err := l.bw.Flush(); err != nil {
		l.mu.Unlock()
		return nil, err
	}
	dir := l.dir
	l.mu.Unlock()
	return NewReader(dir)
}

// Next returns the next record in log order. The payload is freshly
// allocated per record and safe to retain or hand to another goroutine. At
// the end of the log it returns io.EOF. An error is sticky: once a sealed
// segment reports corruption, every further Next repeats the error rather
// than silently resuming past the hole.
func (r *Reader) Next() (tick uint64, payload []byte, err error) {
	if r.err != nil {
		return 0, nil, r.err
	}
	for {
		if r.f == nil {
			if r.seg >= len(r.starts) {
				return 0, nil, io.EOF
			}
			f, err := os.Open(filepath.Join(r.dir, segName(r.starts[r.seg])))
			if err != nil {
				return 0, nil, fmt.Errorf("wal: %w", err)
			}
			r.f = f
			r.br = bufio.NewReaderSize(f, 1<<16)
			r.off = 0
		}
		tick, payload, size, ok, err := parseRecord(r.br)
		if err != nil {
			// A device read failure, not frame content: sticky, like
			// sealed-segment corruption — never silently resume past it.
			r.err = fmt.Errorf("wal: %w", err)
			return 0, nil, r.err
		}
		if ok {
			r.off += size
			return tick, payload, nil
		}
		// The scan stopped short: clean end, torn tail, or corruption.
		if err := r.finishSegment(); err != nil {
			r.err = err
			return 0, nil, err
		}
	}
}

// finishSegment closes the open segment after its scan stopped, erroring if
// a sealed (non-final) segment ended before its physical size — records that
// were acknowledged durable must never be skipped silently.
func (r *Reader) finishSegment() error {
	name := segName(r.starts[r.seg])
	info, statErr := r.f.Stat()
	r.f.Close() //nolint:errcheck // read-only handle
	r.f, r.br = nil, nil
	lastSeg := r.seg == len(r.starts)-1
	r.seg++
	if lastSeg {
		return nil
	}
	if statErr != nil {
		return fmt.Errorf("wal: %w", statErr)
	}
	if r.off < info.Size() {
		return fmt.Errorf("wal: segment %s corrupt at offset %d of %d", name, r.off, info.Size())
	}
	return nil
}

// Close releases the reader's file handle. The reader must not be used
// afterwards.
func (r *Reader) Close() error {
	if r.f != nil {
		err := r.f.Close()
		r.f, r.br = nil, nil
		r.seg = len(r.starts)
		return err
	}
	r.seg = len(r.starts)
	return nil
}
