// Package wal implements the logical log of Section 3.1: instead of
// physically logging every state change (which would exhaust disk bandwidth
// at MMO update rates), the engine appends one compact record per tick
// describing the tick's updates, and recovery replays those records on top
// of the newest complete checkpoint to reach the exact crash tick.
//
// The log is a directory of append-only segment files. Records are CRC
// framed; a torn tail (crash mid-append) is detected and truncated on open.
// Segments rotate when a checkpoint completes, so segments wholly covered by
// the double backup can be pruned.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

const (
	segPrefix = "wal-"
	segSuffix = ".seg"

	// maxRecordSize bounds a single record; larger lengths mark corruption.
	maxRecordSize = 1 << 28
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Log is a tick-granular logical log.
type Log struct {
	mu       sync.Mutex
	dir      string
	f        *os.File
	bw       *bufio.Writer
	segStart uint64
	lastTick uint64
	hasTick  bool
	closed   bool
}

func segName(start uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, start, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	num := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	v, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// segments returns the sorted segment start ticks present in dir.
func segments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var starts []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if v, ok := parseSegName(e.Name()); ok {
			starts = append(starts, v)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// Open opens (creating if necessary) the log in dir and positions the writer
// after the last valid record, truncating any torn tail left by a crash.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir}
	starts, err := segments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if len(starts) == 0 {
		if err := l.openSegment(0); err != nil {
			return nil, err
		}
		return l, nil
	}
	last := starts[len(starts)-1]
	path := filepath.Join(dir, segName(last))
	validLen, lastTick, hasTick, err := scanSegment(path, nil, 0)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 1<<16)
	l.segStart = last
	l.lastTick = lastTick
	l.hasTick = hasTick
	return l, nil
}

func (l *Log) openSegment(start uint64) error {
	path := filepath.Join(l.dir, segName(start))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 1<<16)
	l.segStart = start
	return nil
}

// Append writes one tick record. Ticks must be non-decreasing.
func (l *Log) Append(tick uint64, payload []byte) error {
	var t0 time.Time
	if telemetry.Enabled() {
		t0 = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.hasTick && tick < l.lastTick {
		return fmt.Errorf("wal: tick %d before last appended %d", tick, l.lastTick)
	}
	var hdr [16]byte
	body := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint64(body, tick)
	copy(body[8:], payload)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	// Bytes 8..16 of the header are reserved (zero) and covered by the
	// length sanity check on read.
	if _, err := l.bw.Write(hdr[:8]); err != nil {
		return err
	}
	if _, err := l.bw.Write(body); err != nil {
		return err
	}
	l.lastTick = tick
	l.hasTick = true
	telAppendBytes.Add(uint64(16 + len(payload)))
	telAppend.ObserveSince(t0)
	return nil
}

// Flush writes buffered records through to the active segment file without
// fsyncing. It is the visibility barrier for tail-follow consumers: after
// Flush, a TailReader sees every appended frame. Durability still comes
// from Sync (or rotation/close).
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.bw.Flush()
}

// Sync flushes buffered records and fsyncs the active segment.
func (l *Log) Sync() error {
	var t0 time.Time
	if telemetry.Enabled() {
		t0 = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.bw.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	telFsync.ObserveSince(t0)
	return nil
}

// Rotate seals the active segment and starts a new one whose records begin
// at nextTick. The engine rotates when a checkpoint completes.
func (l *Log) Rotate(nextTick uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if nextTick <= l.segStart && l.segStart != 0 {
		return fmt.Errorf("wal: rotate to %d not after segment start %d", nextTick, l.segStart)
	}
	if err := l.bw.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegment(nextTick)
}

// Prune removes sealed segments that cannot contain any record with
// tick >= keepFrom: a segment is deletable when the next segment starts at
// or below keepFrom. The active segment is never deleted.
func (l *Log) Prune(keepFrom uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	starts, err := segments(l.dir)
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(starts); i++ {
		if starts[i] == l.segStart {
			break
		}
		if starts[i+1] <= keepFrom {
			if err := os.Remove(filepath.Join(l.dir, segName(starts[i]))); err != nil {
				return fmt.Errorf("wal: prune: %w", err)
			}
		}
	}
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.bw.Flush(); err != nil {
		l.f.Close()
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Replay invokes fn for every record with tick >= from, across all segments
// in order. A torn tail in the final segment is skipped silently (those
// ticks were never acknowledged as durable); corruption in the middle of the
// log is reported as an error.
func (l *Log) Replay(from uint64, fn func(tick uint64, payload []byte) error) error {
	r, err := l.NewReader()
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		tick, payload, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if tick < from {
			continue
		}
		if err := fn(tick, payload); err != nil {
			return err
		}
	}
}

// parseRecord reads one CRC-framed record from r: the single source of
// truth for the frame layout (u32 length | u32 crc | u64 tick | payload)
// shared by the open-time scan, the batch Reader and the tail-follow
// reader. ok=false with a nil error means no complete valid frame is there
// — a torn tail or corruption; the caller decides which. A non-nil error
// is a real device failure, never frame content (end-of-data conditions
// map to ok=false).
func parseRecord(r io.Reader) (tick uint64, payload []byte, size int64, ok bool, err error) {
	var hdr [8]byte
	if _, e := io.ReadFull(r, hdr[:]); e != nil {
		return 0, nil, 0, false, readErr(e)
	}
	length := binary.LittleEndian.Uint32(hdr[0:])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:])
	if length < 8 || length > maxRecordSize {
		return 0, nil, 0, false, nil // corrupt length
	}
	body := make([]byte, length)
	if _, e := io.ReadFull(r, body); e != nil {
		return 0, nil, 0, false, readErr(e)
	}
	if crc32.ChecksumIEEE(body) != wantCRC {
		return 0, nil, 0, false, nil // corrupt body
	}
	return binary.LittleEndian.Uint64(body), body[8:], int64(8) + int64(length), true, nil
}

// readErr keeps end-of-data out of the error channel: a short read at the
// end of the data is a torn tail (frame content), not a device failure.
func readErr(e error) error {
	if e == io.EOF || e == io.ErrUnexpectedEOF {
		return nil
	}
	return e
}

// scanSegment reads records from a segment, calling fn (if non-nil) for each
// valid one. It returns the byte offset after the last valid record, the
// last tick seen, and whether any record was seen. A torn or corrupt tail
// simply ends the scan; device read failures and errors from fn abort it.
func scanSegment(path string, fn func(uint64, []byte) error, _ int) (validLen int64, lastTick uint64, hasTick bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var off int64
	for {
		tick, payload, size, ok, err := parseRecord(br)
		if err != nil {
			return off, lastTick, hasTick, fmt.Errorf("wal: %w", err)
		}
		if !ok {
			return off, lastTick, hasTick, nil // clean EOF, torn or corrupt tail
		}
		if fn != nil {
			if err := fn(tick, payload); err != nil {
				return off, lastTick, hasTick, err
			}
		}
		off += size
		lastTick = tick
		hasTick = true
	}
}
