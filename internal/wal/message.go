package wal

import (
	"encoding/binary"
	"fmt"
)

// Cross-partition message payloads. The bounded-skew cluster (internal/skew)
// lets partitions tick ahead of each other inside a fixed window, so a
// cross-partition action emitted by node i while applying its tick T cannot
// be folded into the destination's tick-T input — the destination may already
// be past T. Instead the action travels as a *message* scheduled for a future
// tick, and it is logged with its origin pinned on it: (origin node, origin
// tick, update batch). Recovery uses the origin tick to re-derive which
// messages were still in flight at the crash; replay treats the batch exactly
// like a tick's own updates. The encoding lives here, next to the update
// batch codec it wraps, so the engine's record framing and the skew tier's
// message store agree on the bytes byte-for-byte.

// EncodeMessage appends the message encoding to buf and returns it: the
// origin node, the origin tick, then the update batch in EncodeUpdates form.
func EncodeMessage(buf []byte, origin uint32, originTick uint64, updates []Update) []byte {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], origin)
	binary.LittleEndian.PutUint64(hdr[4:], originTick)
	buf = append(buf, hdr[:]...)
	return EncodeUpdates(buf, updates)
}

// DecodeMessage parses a payload encoded by EncodeMessage, appending the
// update batch to dst.
func DecodeMessage(dst []Update, payload []byte) (origin uint32, originTick uint64, updates []Update, err error) {
	if len(payload) < 12 {
		return 0, 0, dst, fmt.Errorf("wal: message payload %d bytes, want >= 12", len(payload))
	}
	origin = binary.LittleEndian.Uint32(payload[0:])
	originTick = binary.LittleEndian.Uint64(payload[4:])
	updates, err = DecodeUpdates(dst, payload[12:])
	return origin, originTick, updates, err
}
