package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// readAll drains a Reader into tick→payload pairs, preserving order.
func readAll(t *testing.T, r *Reader) (ticks []uint64, payloads []string) {
	t.Helper()
	for {
		tick, payload, err := r.Next()
		if err == io.EOF {
			return ticks, payloads
		}
		if err != nil {
			t.Fatal(err)
		}
		ticks = append(ticks, tick)
		payloads = append(payloads, string(payload))
	}
}

func TestReaderMatchesReplay(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := map[uint64]string{}
	for tick := uint64(0); tick < 20; tick++ {
		p := fmt.Sprintf("payload-%d", tick)
		if err := l.Append(tick, []byte(p)); err != nil {
			t.Fatal(err)
		}
		want[tick] = p
		if tick == 7 || tick == 13 {
			if err := l.Rotate(tick + 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	r, err := l.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ticks, payloads := readAll(t, r)
	if len(ticks) != len(want) {
		t.Fatalf("reader saw %d records, want %d", len(ticks), len(want))
	}
	for i, tick := range ticks {
		if i > 0 && tick < ticks[i-1] {
			t.Fatalf("ticks out of order: %d after %d", tick, ticks[i-1])
		}
		if want[tick] != payloads[i] {
			t.Errorf("tick %d payload %q, want %q", tick, payloads[i], want[tick])
		}
	}
}

// TestConcurrentReaders: several Readers scanning one log directory at once
// each see the full record sequence — the contract the parallel recovery
// pipeline's log stage relies on.
func TestConcurrentReaders(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const records = 50
	for tick := uint64(0); tick < records; tick++ {
		if err := l.Append(tick, []byte{byte(tick)}); err != nil {
			t.Fatal(err)
		}
		if tick%17 == 16 {
			if err := l.Rotate(tick + 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	const workers = 4
	var wg sync.WaitGroup
	counts := make([]int, workers)
	errs := make([]error, workers)
	readers := make([]*Reader, workers)
	for w := range readers {
		r, err := l.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		readers[w] = r
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer readers[w].Close()
			next := uint64(0)
			for {
				tick, payload, err := readers[w].Next()
				if err == io.EOF {
					return
				}
				if err != nil {
					errs[w] = err
					return
				}
				if tick != next || len(payload) != 1 || payload[0] != byte(tick) {
					errs[w] = fmt.Errorf("worker %d: record %d = (%d, %v)", w, next, tick, payload)
					return
				}
				next++
				counts[w]++
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatal(errs[w])
		}
		if counts[w] != records {
			t.Errorf("worker %d saw %d records, want %d", w, counts[w], records)
		}
	}
}

func TestReaderTornTailEndsCleanly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for tick := uint64(0); tick < 3; tick++ {
		if err := l.Append(tick, []byte("ok")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Append garbage half-record bytes to the final segment: a torn tail.
	starts, err := segments(dir)
	if err != nil || len(starts) != 1 {
		t.Fatalf("segments: %v %v", starts, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(starts[0])), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := NewReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ticks, _ := readAll(t, r)
	if len(ticks) != 3 {
		t.Errorf("reader saw %d records through a torn tail, want 3", len(ticks))
	}
}

func TestReaderSealedSegmentCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for tick := uint64(0); tick < 5; tick++ {
		if err := l.Append(tick, []byte("abc")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(5); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(5, []byte("def")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	starts, err := segments(dir)
	if err != nil || len(starts) != 2 {
		t.Fatalf("segments: %v %v", starts, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(starts[0])), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF}, 20); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := NewReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sawErr := false
	for {
		_, _, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("sealed-segment corruption scanned silently")
	}
	// The error is sticky: retrying must not silently resume past the hole.
	if _, _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("Next after corruption = %v, want the sticky corruption error", err)
	}
}

func TestReaderOnClosedLog(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.NewReader(); err != ErrClosed {
		t.Errorf("NewReader on closed log = %v, want ErrClosed", err)
	}
}
