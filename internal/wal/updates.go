package wal

import (
	"encoding/binary"
	"fmt"
)

// Update is one cell write: the 4-byte value stored into a table cell. This
// is the logical unit the engine logs — one record per tick holds the tick's
// whole update batch.
type Update struct {
	Cell  uint32
	Value uint32
}

// EncodeUpdates appends the batch encoding to buf and returns it. Cells are
// delta-encoded (signed varint from the previous cell) because game updates
// cluster by unit; values are fixed 4-byte little-endian.
func EncodeUpdates(buf []byte, updates []Update) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(updates)))
	prev := int64(0)
	var v [4]byte
	for _, u := range updates {
		buf = binary.AppendVarint(buf, int64(u.Cell)-prev)
		prev = int64(u.Cell)
		binary.LittleEndian.PutUint32(v[:], u.Value)
		buf = append(buf, v[:]...)
	}
	return buf
}

// DecodeUpdates parses a batch encoded by EncodeUpdates, appending to dst.
func DecodeUpdates(dst []Update, payload []byte) ([]Update, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return dst, fmt.Errorf("wal: bad update count")
	}
	payload = payload[n:]
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		d, n := binary.Varint(payload)
		if n <= 0 {
			return dst, fmt.Errorf("wal: bad cell delta at update %d", i)
		}
		payload = payload[n:]
		cell := prev + d
		if cell < 0 || cell > 1<<32-1 {
			return dst, fmt.Errorf("wal: cell %d out of range at update %d", cell, i)
		}
		prev = cell
		if len(payload) < 4 {
			return dst, fmt.Errorf("wal: truncated value at update %d", i)
		}
		dst = append(dst, Update{
			Cell:  uint32(cell),
			Value: binary.LittleEndian.Uint32(payload),
		})
		payload = payload[4:]
	}
	if len(payload) != 0 {
		return dst, fmt.Errorf("wal: %d trailing bytes after batch", len(payload))
	}
	return dst, nil
}
