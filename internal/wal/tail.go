package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// TailReader follows a log directory incrementally, including the segment
// the writer is still appending to. It is the replication shipper's view of
// the log: a second, concurrent consumer that must see a record only once
// its tick frame is complete on disk, and must never see a torn read.
//
// TryNext is non-blocking: it returns the next complete record if one is
// physically present, or ok=false when the reader has caught up with the
// writer (the caller decides how to wait — the engine's tick-commit
// notification, a timer, or both). Completeness is judged purely from the
// frame: a record is returned only when its length header, full body, and
// CRC all check out, so a concurrently-appending writer can never expose a
// partial record — the torn frame just reads as "not yet".
//
// Rotation is followed automatically: the writer seals a segment (flush,
// sync, close) before creating its successor, so the moment a newer segment
// exists the current one is final — a frame that still does not parse then
// is corruption, reported as a sticky error exactly like Reader does for
// sealed segments. Segments pruned while the reader was between them (their
// ticks are covered by a checkpoint and acked by every subscriber) are
// skipped silently.
type TailReader struct {
	dir      string
	from     uint64 // segments whose successor starts at or below from are skipped
	cur      uint64 // start tick of the open (or last finished) segment
	curValid bool
	f        *os.File
	off      int64
	err      error // sticky: sealed-segment corruption never silently resumes
}

// NewTailReader opens a tail-follow reader over dir. Records with tick
// below from may still be returned (the caller filters); from is only a
// hint that lets the reader skip whole sealed segments that cannot contain
// any record at or above it. The directory may be empty or not yet exist —
// TryNext reports "nothing yet" until the first segment appears.
func NewTailReader(dir string, from uint64) *TailReader {
	return &TailReader{dir: dir, from: from}
}

// TryNext returns the next complete record, or ok=false when the reader has
// caught up with the writer's durable frontier. The payload is freshly
// allocated and safe to retain. Errors (sealed-segment corruption, I/O
// failures) are sticky.
func (t *TailReader) TryNext() (tick uint64, payload []byte, ok bool, err error) {
	if t.err != nil {
		return 0, nil, false, t.err
	}
	for {
		if t.f == nil {
			opened, err := t.openNext()
			if err != nil {
				t.err = err
				return 0, nil, false, err
			}
			if !opened {
				return 0, nil, false, nil // no (further) segment yet
			}
		}
		tick, payload, n, err := t.parseAt(t.off)
		if err != nil {
			t.err = err
			return 0, nil, false, err
		}
		if n > 0 {
			t.off += n
			return tick, payload, true, nil
		}
		// The frame at t.off does not (yet) parse. If a newer segment
		// exists, the writer sealed this one before creating it, so the
		// content here is final — but the successor may have appeared
		// between our failed parse and the check, so parse once more
		// before judging the tail. The sealed check lists the (few-entry)
		// log directory; it runs once per caught-up probe — one tick
		// signal or idle poll — which is microseconds against a tick.
		sealed, err := t.sealed()
		if err != nil {
			t.err = err
			return 0, nil, false, err
		}
		if !sealed {
			return 0, nil, false, nil // live tail: frame still being appended
		}
		if tick, payload, n, err := t.parseAt(t.off); err != nil {
			t.err = err
			return 0, nil, false, err
		} else if n > 0 {
			t.off += n
			return tick, payload, true, nil
		}
		info, err := t.f.Stat()
		if err != nil {
			t.err = fmt.Errorf("wal: %w", err)
			return 0, nil, false, t.err
		}
		if t.off < info.Size() {
			t.err = fmt.Errorf("wal: segment %s corrupt at offset %d of %d",
				segName(t.cur), t.off, info.Size())
			return 0, nil, false, t.err
		}
		// Cleanly consumed to the end of a sealed segment: advance.
		t.f.Close() //nolint:errcheck // read-only handle
		t.f = nil
	}
}

// openNext opens the first unread segment: the successor of cur, or the
// starting segment chosen by the from hint. Segments that vanish between
// listing and opening were pruned (all their ticks below every consumer's
// watermark) and are skipped.
func (t *TailReader) openNext() (bool, error) {
	for {
		starts, err := segments(t.dir)
		if err != nil {
			if os.IsNotExist(err) {
				return false, nil // log directory not created yet
			}
			return false, fmt.Errorf("wal: %w", err)
		}
		next, found := t.pickNext(starts)
		if !found {
			return false, nil
		}
		f, err := os.Open(filepath.Join(t.dir, segName(next)))
		if err != nil {
			if os.IsNotExist(err) {
				// Pruned under us: re-list and move past it.
				t.cur, t.curValid = next, true
				continue
			}
			return false, fmt.Errorf("wal: %w", err)
		}
		t.f = f
		t.off = 0
		t.cur, t.curValid = next, true
		return true, nil
	}
}

// pickNext chooses the segment to open from a sorted start list: after cur
// once reading has started, otherwise the last segment that can still hold
// records at or above from (a sealed segment's records are all below its
// successor's start tick, so predecessors of that pick are skippable).
func (t *TailReader) pickNext(starts []uint64) (uint64, bool) {
	if t.curValid {
		for _, s := range starts {
			if s > t.cur {
				return s, true
			}
		}
		return 0, false
	}
	if len(starts) == 0 {
		return 0, false
	}
	pick := starts[0]
	for _, s := range starts[1:] {
		if s <= t.from {
			pick = s
		}
	}
	return pick, true
}

// sealed reports whether a segment newer than the open one exists — the
// writer's rotation order (flush, sync, close, then create the successor)
// makes that the proof the open segment's bytes are final.
func (t *TailReader) sealed() (bool, error) {
	starts, err := segments(t.dir)
	if err != nil {
		return false, fmt.Errorf("wal: %w", err)
	}
	for _, s := range starts {
		if s > t.cur {
			return true, nil
		}
	}
	return false, nil
}

// parseAt reads the frame at off via a positioned view of the segment,
// through the package's single frame parser. n=0 with a nil error means no
// complete valid frame is present there (torn tail, corruption — the
// caller judges which); a non-nil error is a real device failure and is
// made sticky by TryNext rather than reading as "nothing yet" forever.
func (t *TailReader) parseAt(off int64) (tick uint64, payload []byte, n int64, err error) {
	sr := io.NewSectionReader(t.f, off, 1<<62-off)
	tick, payload, n, ok, err := parseRecord(sr)
	if err != nil {
		return 0, nil, 0, fmt.Errorf("wal: segment %s at offset %d: %w", segName(t.cur), off, err)
	}
	if !ok {
		return 0, nil, 0, nil
	}
	return tick, payload, n, nil
}

// Close releases the reader's file handle. The reader must not be used
// afterwards.
func (t *TailReader) Close() error {
	if t.f != nil {
		err := t.f.Close()
		t.f = nil
		return err
	}
	return nil
}
