package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func collect(t *testing.T, l *Log, from uint64) map[uint64]string {
	t.Helper()
	got := map[uint64]string{}
	err := l.Replay(from, func(tick uint64, payload []byte) error {
		got[tick] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for tick := uint64(0); tick < 10; tick++ {
		if err := l.Append(tick, []byte{byte('a' + tick)}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, l, 0)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	if got[3] != "d" {
		t.Errorf("tick 3 payload = %q", got[3])
	}
	// Replay from the middle.
	mid := collect(t, l, 5)
	if len(mid) != 5 {
		t.Errorf("replay from 5 returned %d records", len(mid))
	}
	if _, ok := mid[4]; ok {
		t.Error("replay included tick below from")
	}
}

func TestAppendRejectsDecreasingTick(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(4, nil); err == nil {
		t.Error("decreasing tick accepted")
	}
	if err := l.Append(5, nil); err != nil {
		t.Errorf("equal tick rejected: %v", err)
	}
}

func TestReopenContinues(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for tick := uint64(0); tick < 5; tick++ {
		if err := l.Append(tick, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Append(3, nil); err == nil {
		t.Error("reopened log lost tick high-water mark")
	}
	if err := l2.Append(7, []byte("y")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l2, 0)
	if len(got) != 6 {
		t.Errorf("got %d records after reopen, want 6", len(got))
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for tick := uint64(0); tick < 5; tick++ {
		if err := l.Append(tick, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: append garbage bytes to the segment.
	segs, err := os.ReadDir(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %d", err, len(segs))
	}
	path := filepath.Join(dir, segs[0].Name())
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2, 0)
	if len(got) != 5 {
		t.Errorf("torn tail: %d records, want 5", len(got))
	}
	// The torn bytes must be gone so appends are clean.
	if err := l2.Append(10, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l2, 0); len(got) != 6 {
		t.Errorf("after truncate+append: %d records, want 6", len(got))
	}
}

func TestTornRecordBodyTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := os.ReadDir(dir)
	path := filepath.Join(dir, segs[0].Name())
	// A header promising more bytes than exist (torn body).
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{100, 0, 0, 0, 1, 2, 3, 4, 9, 9}) //nolint:errcheck
	f.Close()
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2, 0); len(got) != 1 {
		t.Errorf("%d records, want 1", len(got))
	}
}

func TestRotateAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for tick := uint64(0); tick < 30; tick++ {
		if err := l.Append(tick, []byte{byte(tick)}); err != nil {
			t.Fatal(err)
		}
		if tick == 9 || tick == 19 {
			if err := l.Rotate(tick + 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	starts, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 3 {
		t.Fatalf("%d segments, want 3", len(starts))
	}
	// All records still replayable across segments.
	if got := collect(t, l, 0); len(got) != 30 {
		t.Errorf("replay across segments: %d records, want 30", len(got))
	}
	// Prune below 10: the first segment (ticks 0..9) can go.
	if err := l.Prune(10); err != nil {
		t.Fatal(err)
	}
	starts, _ = segments(dir)
	if len(starts) != 2 {
		t.Errorf("after prune: %d segments, want 2", len(starts))
	}
	if got := collect(t, l, 10); len(got) != 20 {
		t.Errorf("after prune replay: %d records, want 20", len(got))
	}
	// Prune never deletes the active segment.
	if err := l.Prune(1 << 60); err != nil {
		t.Fatal(err)
	}
	starts, _ = segments(dir)
	if len(starts) == 0 {
		t.Error("prune removed the active segment")
	}
}

func TestClosedLogErrors(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := l.Append(0, nil); err != ErrClosed {
		t.Errorf("Append after close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Errorf("Sync after close = %v, want ErrClosed", err)
	}
	if err := l.Replay(0, nil); err != ErrClosed {
		t.Errorf("Replay after close = %v, want ErrClosed", err)
	}
}

func TestEncodeDecodeUpdates(t *testing.T) {
	in := []Update{{Cell: 100, Value: 42}, {Cell: 101, Value: 7}, {Cell: 5, Value: 0xFFFFFFFF}}
	buf := EncodeUpdates(nil, in)
	out, err := DecodeUpdates(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip: %v != %v", out, in)
	}
	// Empty batch.
	empty, err := DecodeUpdates(nil, EncodeUpdates(nil, nil))
	if err != nil || len(empty) != 0 {
		t.Errorf("empty batch: %v %v", empty, err)
	}
}

func TestDecodeUpdatesRejectsGarbage(t *testing.T) {
	if _, err := DecodeUpdates(nil, nil); err == nil {
		t.Error("empty payload accepted")
	}
	good := EncodeUpdates(nil, []Update{{Cell: 1, Value: 2}})
	if _, err := DecodeUpdates(nil, good[:len(good)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := DecodeUpdates(nil, append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// Property: arbitrary update batches survive the codec.
func TestQuickUpdatesRoundTrip(t *testing.T) {
	f := func(cells []uint32, values []uint32) bool {
		n := len(cells)
		if len(values) < n {
			n = len(values)
		}
		in := make([]Update, n)
		for i := 0; i < n; i++ {
			in[i] = Update{Cell: cells[i], Value: values[i]}
		}
		out, err := DecodeUpdates(nil, EncodeUpdates(nil, in))
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: random append/rotate sequences always replay every record in
// order, regardless of where rotations fall.
func TestQuickRotationReplay(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		dir, err := os.MkdirTemp("", "walq")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		l, err := Open(dir)
		if err != nil {
			return false
		}
		defer l.Close()
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		for tick := 0; tick < n; tick++ {
			if err := l.Append(uint64(tick), []byte{byte(tick)}); err != nil {
				return false
			}
			if rng.Intn(7) == 0 {
				if err := l.Rotate(uint64(tick + 1)); err != nil {
					return false
				}
			}
		}
		count := 0
		prev := int64(-1)
		err = l.Replay(0, func(tick uint64, payload []byte) error {
			if int64(tick) <= prev || payload[0] != byte(tick) {
				return os.ErrInvalid
			}
			prev = int64(tick)
			count++
			return nil
		})
		return err == nil && count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppend64kUpdates(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	updates := make([]Update, 64000)
	for i := range updates {
		updates[i] = Update{Cell: uint32(i * 3), Value: uint32(i)}
	}
	payload := EncodeUpdates(nil, updates)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(uint64(i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMidLogCorruptionIsAnError: corruption in a SEALED (non-final) segment
// must be reported, not silently truncated — those ticks were acknowledged
// durable.
func TestMidLogCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for tick := uint64(0); tick < 5; tick++ {
		if err := l.Append(tick, []byte("abc")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(5); err != nil {
		t.Fatal(err)
	}
	for tick := uint64(5); tick < 10; tick++ {
		if err := l.Append(tick, []byte("def")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the FIRST (sealed) segment's middle.
	starts, err := segments(dir)
	if err != nil || len(starts) != 2 {
		t.Fatalf("segments: %v %v", starts, err)
	}
	path := filepath.Join(dir, segName(starts[0]))
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF}, 20); err != nil {
		t.Fatal(err)
	}
	f.Close()
	err = l.Replay(0, func(uint64, []byte) error { return nil })
	if err == nil {
		t.Error("mid-log corruption replayed silently")
	}
}

// TestReplayPropagatesCallbackError: an error from the replay callback must
// abort and surface.
func TestReplayPropagatesCallbackError(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for tick := uint64(0); tick < 3; tick++ {
		if err := l.Append(tick, nil); err != nil {
			t.Fatal(err)
		}
	}
	sentinel := os.ErrPermission
	calls := 0
	err = l.Replay(0, func(tick uint64, _ []byte) error {
		calls++
		if tick == 1 {
			return sentinel
		}
		return nil
	})
	if err == nil {
		t.Error("callback error swallowed")
	}
	if calls != 2 {
		t.Errorf("callback ran %d times, want 2 (abort on error)", calls)
	}
}
