// Command exportdoc fails when an exported identifier lacks a doc comment.
//
// It walks the package directories given on the command line, parses every
// non-test Go file, and requires a doc comment on each exported function,
// method with an exported receiver, type, constant, and variable. A grouped
// declaration ("const ( ... )" / "var ( ... )") passes if either the group
// or the individual spec is documented. CI runs it over the packages whose
// godoc we guarantee:
//
//	go run ./cmd/exportdoc ./internal/session ./internal/cluster ./internal/replication \
//	    ./internal/peerram ./internal/recovery
//
// Exit status is the number of undocumented exported identifiers capped at
// 1 — zero means every exported symbol is documented.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: exportdoc <package dir> [<package dir> ...]")
		os.Exit(2)
	}
	var gaps []string
	for _, dir := range os.Args[1:] {
		g, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exportdoc:", err)
			os.Exit(2)
		}
		gaps = append(gaps, g...)
	}
	if len(gaps) > 0 {
		sort.Strings(gaps)
		for _, g := range gaps {
			fmt.Println(g)
		}
		fmt.Fprintf(os.Stderr, "exportdoc: %d exported identifiers lack doc comments\n", len(gaps))
		os.Exit(1)
	}
}

// checkDir parses the non-test files of one package directory and returns a
// "file:line: identifier" gap per undocumented exported symbol.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var gaps []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		gaps = append(gaps, fmt.Sprintf("%s:%d: %s %s is exported but undocumented",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(d, report)
				case *ast.GenDecl:
					checkGen(d, report)
				}
			}
		}
	}
	return gaps, nil
}

// checkFunc flags exported functions, and methods whose receiver type is
// exported, that carry no doc comment.
func checkFunc(d *ast.FuncDecl, report func(token.Pos, string, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	what, name := "function", d.Name.Name
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return // method on an unexported type: internal API
		}
		what, name = "method", recv+"."+d.Name.Name
	}
	report(d.Pos(), what, name)
}

// checkGen flags exported names inside type/const/var declarations. A doc
// comment on the grouped declaration covers every spec in the group.
func checkGen(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(n.Pos(), d.Tok.String(), n.Name)
				}
			}
		}
	}
}

// receiverName unwraps a method receiver type expression down to its type
// identifier ("*Gateway" and "Gateway" both yield "Gateway").
func receiverName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr: // generic receiver
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
