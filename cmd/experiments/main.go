// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all -scale quick
//	experiments -exp fig2a,fig2b,fig2c -scale full
//	experiments -exp fig6 -scale full -out results/
//	experiments -exp list
//
// The experiment set is a registry (see experimentTable below): -exp list
// prints every registered name, the -exp flag's usage text is generated
// from the same table, and an unknown name errors out listing it — the doc,
// the flag and the dispatcher cannot drift apart. Output is printed as
// aligned text tables; -out additionally writes CSV files per figure.
//
// -shards N runs the fig6 validation engine sharded (N apply workers and
// checkpoint flushers); the sharding and recoverytime experiments sweep
// shard counts regardless. -recovery-log-ticks trims the recoverytime
// log-length axis (CI smoke uses a single tiny value). failovertime builds
// a live primary→standby replication pair per point and reports warm
// takeover vs cold recovery; -failover-updates/-lag/-shards pin single
// values for its axes and -failover-log-ticks the crash-point log length.
//
// scenariobench sweeps workload scenario × checkpoint method × shard count
// across apply, checkpoint, cold recovery and warm failover, verifying
// byte identity per cell, and writes a machine-readable report to
// -bench-out (default BENCH_scenarios.json). -bench-scenarios trims the
// scenario axis and -bench-disk overrides its backup throttle (reports
// with different throttles are not comparable, so the gate refuses
// them). -gate compares the fresh report against the committed
// -bench-baseline within -gate-tolerance and exits non-zero on regression
// (the CI perf gate); -gate-preflight only checks that the committed
// baseline is comparable with the sweep config and exits, the fail-fast CI
// step that runs before any benchmark time is spent. Intentional perf
// changes refresh the baseline with:
//
//	experiments -exp scenariobench -scale quick -write-baseline
//
// clusterbench runs the real multi-node cluster (internal/cluster) through
// scenario × cluster size × recovery mode (disk pipeline, standby
// promotion, peer-RAM restore): synchronized tick overhead, coordinated
// world checkpoints, whole-world recovery down each ladder rung with the
// served mode and compressed replica RAM reported, and live partition
// migration with a zero-blackout check and per-cell byte identity against
// a single-node reference. -cluster-scenarios, -cluster-sizes and
// -cluster-recovery-modes trim the sweep. -cluster-coordination adds the
// tick-coordination axis: "skew" cells run the same scenarios under the
// bounded-skew discipline (internal/skew, window -cluster-max-skew) with
// live cross-partition messages, uncoordinated per-node cuts and
// cut-reconstruction recovery, reporting the coordinator's per-tick blocked
// time next to the barrier's. It is the measured successor of the
// analytical multiserver model.
//
// chaosbench runs seeded fault-injection schedules (internal/chaos) over
// scenario × fault site × seed: a backup device that dies mid-flush, a
// replication link severed mid-frame session after session, a migration
// range stream cut mid-transfer, a peer-RAM holder killed mid-restore.
// Every cell must end byte-identical to a
// never-faulted reference — "survived" when no fault fired, "degraded" when
// faults fired and the degradation path held; any "failed" cell exits
// non-zero, printing the (seed, site) pair that replays it.
// -chaos-scenarios, -chaos-sites and -chaos-seeds trim the matrix.
//
// gatewaybench runs the session tier (internal/session) over the real
// cluster: a simulated client population connects through a gateway,
// per-tick intents flow in and interest-managed deltas flow back out, per
// churn profile × cluster size. It reports sustainable clients/node under
// the paper's 50ms tick budget, intent→visible latency, churn absorbed by
// the login/reconnect storm profiles, and crash equivalence against an
// independent reference instance. -gateway-profiles, -gateway-sizes and
// -gateway-clients trim the sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/session"
)

// experimentTable is the single registry the -exp flag's usage text, the
// list subcommand, unknown-name errors, and the dispatcher all derive from.
// Entries run in table order; an entry with several names runs once when
// any of them is selected (its runner re-checks want for sub-figures).
var experimentTable = []struct {
	names []string
	run   func(r *runner, want func(string) bool)
}{
	{[]string{"table1", "table2"}, func(r *runner, _ func(string) bool) { r.tables12() }},
	{[]string{"table3"}, func(r *runner, _ func(string) bool) { r.table3() }},
	{[]string{"fig2a", "fig2b", "fig2c"}, func(r *runner, want func(string) bool) {
		r.fig2(want("fig2a"), want("fig2b"), want("fig2c"))
	}},
	{[]string{"fig3"}, func(r *runner, _ func(string) bool) { r.fig3() }},
	{[]string{"fig4a", "fig4b", "fig4c"}, func(r *runner, want func(string) bool) {
		r.fig4(want("fig4a"), want("fig4b"), want("fig4c"))
	}},
	{[]string{"fig5", "table5"}, func(r *runner, _ func(string) bool) { r.fig5() }},
	{[]string{"fig6"}, func(r *runner, _ func(string) bool) { r.fig6() }},
	{[]string{"ablation-c"}, func(r *runner, _ func(string) bool) { r.ablationC() }},
	{[]string{"ablation-sorted"}, func(r *runner, _ func(string) bool) { r.ablationSorted() }},
	{[]string{"ablation-hw"}, func(r *runner, _ func(string) bool) { r.ablationHW() }},
	{[]string{"logging"}, func(r *runner, _ func(string) bool) { r.logging() }},
	{[]string{"ksafety"}, func(r *runner, _ func(string) bool) { r.ksafety() }},
	{[]string{"multiserver"}, func(r *runner, _ func(string) bool) { r.multiserver() }},
	{[]string{"sharding"}, func(r *runner, _ func(string) bool) { r.sharding() }},
	{[]string{"recoverytime"}, func(r *runner, _ func(string) bool) { r.recoverytime() }},
	{[]string{"failovertime"}, func(r *runner, _ func(string) bool) { r.failovertime() }},
	{[]string{"scenariobench"}, func(r *runner, _ func(string) bool) { r.scenariobench() }},
	{[]string{"clusterbench"}, func(r *runner, _ func(string) bool) { r.clusterbench() }},
	{[]string{"chaosbench"}, func(r *runner, _ func(string) bool) { r.chaosbench() }},
	{[]string{"gatewaybench"}, func(r *runner, _ func(string) bool) { r.gatewaybench() }},
}

// experimentNames flattens the registry, in table order.
func experimentNames() []string {
	var names []string
	for _, e := range experimentTable {
		names = append(names, e.names...)
	}
	return names
}

func main() {
	var (
		expFlag = flag.String("exp", "all",
			"comma-separated experiments, 'all', or 'list' (registered: "+
				strings.Join(experimentNames(), ", ")+")")
		scaleFlag  = flag.String("scale", "quick", "quick (1/10 scale) or full (paper scale)")
		outDir     = flag.String("out", "", "directory for CSV output (optional)")
		gnuplot    = flag.Bool("gnuplot", false, "also write gnuplot scripts next to the CSVs")
		seed       = flag.Int64("seed", 1, "trace seed")
		diskBench  = flag.Bool("disk-bench", false, "measure real disk bandwidth for table3 (writes 256 MB)")
		shards     = flag.Int("shards", 0, "engine shards for fig6 validation (0 = paper-faithful single shard)")
		recLog     = flag.Int("recovery-log-ticks", 0, "single log length for recoverytime (0 = scale default sweep)")
		recDisk    = flag.Float64("recovery-disk", 0, "recoverytime/failovertime backup throttle in bytes/sec (0 = paper disk, <0 = unthrottled)")
		foLog      = flag.Int("failover-log-ticks", 0, "failovertime log length behind the crash (0 = scale default)")
		foUpd      = flag.Int("failover-updates", 0, "single failovertime update rate (0 = default sweep)")
		foLag      = flag.Int("failover-lag", 0, "single failovertime replay-lag budget (0 = default sweep)")
		foShards   = flag.Int("failover-shards", 0, "single failovertime shard count (0 = default sweep)")
		foCheck    = flag.Bool("failover-check", false, "fail if warm takeover is not strictly below cold pipeline recovery in every failovertime row (meaningful under the default paper-disk throttle)")
		clustScen  = flag.String("cluster-scenarios", "", "comma-separated clusterbench scenario filter (empty = hotspot,migration,flashcrowd)")
		clustSize  = flag.String("cluster-sizes", "", "comma-separated clusterbench node counts (empty = 1,2,4)")
		clustRec   = flag.String("cluster-recovery-modes", "", "comma-separated clusterbench recovery-mode axis (empty = disk,standby,peerram)")
		clustCoord = flag.String("cluster-coordination", "", "comma-separated clusterbench tick-coordination axis: barrier and/or skew (empty = barrier)")
		clustSkew  = flag.Int("cluster-max-skew", 0, "clusterbench bounded-skew window for skew cells (0 = default 4)")
		chaosScen  = flag.String("chaos-scenarios", "", "comma-separated chaosbench scenario filter (empty = flashcrowd,hotspot,migration)")
		chaosSite  = flag.String("chaos-sites", "", "comma-separated chaosbench fault sites (empty = disk,replink,cluster,peerram)")
		chaosSeed  = flag.String("chaos-seeds", "", "comma-separated chaosbench schedule seeds (empty = 1,2,3)")
		gwProf     = flag.String("gateway-profiles", "", "comma-separated gatewaybench churn profiles (empty = "+joinProfiles()+")")
		gwSize     = flag.String("gateway-sizes", "", "comma-separated gatewaybench node counts (empty = 1,2,4)")
		gwClients  = flag.Int("gateway-clients", 0, "gatewaybench simulated client population (0 = scale default)")
		benchScen  = flag.String("bench-scenarios", "", "comma-separated scenariobench scenario filter (empty = all registered scenarios)")
		benchDisk  = flag.Float64("bench-disk", 0, "scenariobench backup throttle in bytes/sec (0 = bench default: 10x the scale's paper disk, <0 = unthrottled); changing it makes reports incomparable with the committed baseline")
		benchOut   = flag.String("bench-out", "BENCH_scenarios.json", "scenariobench report path")
		benchBase  = flag.String("bench-baseline", "bench_baseline.json", "scenariobench committed baseline path")
		writeBase  = flag.Bool("write-baseline", false, "scenariobench: also write the report to -bench-baseline (the documented baseline update path)")
		gate       = flag.Bool("gate", false, "scenariobench: compare the fresh report against -bench-baseline and exit non-zero on regression")
		gateTol    = flag.Float64("gate-tolerance", experiments.DefaultGateTolerance, "scenariobench gate: relative regression band on throughput and recovery time")
		gatePre    = flag.Bool("gate-preflight", false, "scenariobench: only check that -bench-baseline is comparable with this sweep config, then exit — the fail-fast CI step before the real gate")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fatalf("unknown scale %q (quick|full)", *scaleFlag)
	}

	wanted := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		wanted[strings.TrimSpace(e)] = true
	}
	if wanted["list"] {
		fmt.Println(strings.Join(experimentNames(), "\n"))
		return
	}
	known := map[string]bool{"all": true}
	for _, name := range experimentNames() {
		known[name] = true
	}
	for name := range wanted {
		if !known[name] {
			fatalf("unknown experiment %q (have: all, %s)", name, strings.Join(experimentNames(), ", "))
		}
	}
	all := wanted["all"]
	want := func(name string) bool { return all || wanted[name] }

	r := &runner{scale: scale, seed: *seed, outDir: *outDir, gnuplot: *gnuplot,
		diskBench: *diskBench,
		shards:    *shards, recLog: *recLog, recDisk: *recDisk,
		foLog: *foLog, foUpd: *foUpd, foLag: *foLag, foShards: *foShards, foCheck: *foCheck,
		clustScen: *clustScen, clustSize: *clustSize, clustRec: *clustRec,
		clustCoord: *clustCoord, clustSkew: *clustSkew,
		chaosScen: *chaosScen, chaosSite: *chaosSite, chaosSeed: *chaosSeed,
		gwProf: *gwProf, gwSize: *gwSize, gwClients: *gwClients,
		benchScen: *benchScen, benchDisk: *benchDisk, benchOut: *benchOut, benchBase: *benchBase,
		writeBase: *writeBase, gate: *gate, gateTol: *gateTol, gatePre: *gatePre}

	for _, e := range experimentTable {
		hit := all
		for _, name := range e.names {
			if wanted[name] {
				hit = true
			}
		}
		if hit {
			e.run(r, want)
		}
	}
	if r.ran == 0 {
		fatalf("no experiment matched %q", *expFlag)
	}
}

// joinProfiles renders the session churn profiles for the flag usage text.
func joinProfiles() string {
	var names []string
	for _, p := range session.Profiles() {
		names = append(names, string(p))
	}
	return strings.Join(names, ",")
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(2)
}

type runner struct {
	scale      experiments.Scale
	seed       int64
	outDir     string
	gnuplot    bool
	diskBench  bool
	shards     int
	recLog     int
	recDisk    float64
	foLog      int
	foUpd      int
	foLag      int
	foShards   int
	foCheck    bool
	clustScen  string
	clustSize  string
	clustRec   string
	clustCoord string
	clustSkew  int
	chaosScen  string
	chaosSite  string
	chaosSeed  string
	gwProf     string
	gwSize     string
	gwClients  int
	benchScen  string
	benchDisk  float64
	benchOut   string
	benchBase  string
	writeBase  bool
	gate       bool
	gateTol    float64
	gatePre    bool
	ran        int
}

func (r *runner) emit(name string, fig *metrics.Figure) {
	r.ran++
	fmt.Printf("\n=== %s ===\n%s", name, fig.String())
	if r.outDir != "" {
		if err := os.MkdirAll(r.outDir, 0o755); err != nil {
			fatalf("%v", err)
		}
		path := filepath.Join(r.outDir, name+".csv")
		if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("(csv written to %s)\n", path)
		if r.gnuplot {
			logAxes := strings.Contains(name, "fig2") || strings.Contains(name, "fig6")
			plt := filepath.Join(r.outDir, name+".plt")
			if err := os.WriteFile(plt, []byte(fig.Gnuplot(logAxes, logAxes)), 0o644); err != nil {
				fatalf("%v", err)
			}
		}
	}
}

func (r *runner) emitTable(name string, t *metrics.TextTable) {
	r.ran++
	fmt.Printf("\n=== %s ===\n%s", name, t.String())
}

func (r *runner) timed(name string, fn func()) {
	start := time.Now()
	fn()
	fmt.Printf("(%s took %v)\n", name, time.Since(start).Round(time.Millisecond))
}

func (r *runner) tables12() {
	t1 := metrics.NewTextTable()
	t1.Header("method", "copy timing", "objects copied", "disk organization")
	for _, c := range checkpoint.Taxonomy() {
		t1.Row(c.Method.String(), c.Timing.String(), c.Objects.String(), c.Disk.String())
	}
	r.emitTable("Table 1: algorithms for checkpointing game state", t1)

	t2 := metrics.NewTextTable()
	t2.Header("method", "Copy-To-Memory", "Write-Copies", "Handle-Update", "Write-Objects")
	for _, row := range checkpoint.SubroutineTable() {
		t2.Row(row.Method.String(), row.CopyToMemory, row.WriteCopiesToStableStorage,
			row.HandleUpdate, row.WriteObjectsToStable)
	}
	r.emitTable("Table 2: subroutine implementations", t2)
}

func (r *runner) table3() {
	r.timed("table3", func() {
		p, err := experiments.MeasureTable3(r.diskBench, "")
		if err != nil {
			fatalf("table3: %v", err)
		}
		r.emitTable("Table 3: cost-model parameters (paper vs this host)",
			experiments.Table3Comparison(p))
	})
}

func (r *runner) fig2(a, b, c bool) {
	r.timed("fig2", func() {
		fs, err := experiments.RunUpdateSweep(r.scale, r.seed)
		if err != nil {
			fatalf("fig2: %v", err)
		}
		if a {
			r.emit("fig2a-overhead-vs-updates", &fs.Overhead)
		}
		if b {
			r.emit("fig2b-checkpoint-vs-updates", &fs.Checkpoint)
		}
		if c {
			r.emit("fig2c-recovery-vs-updates", &fs.Recovery)
		}
	})
}

func (r *runner) fig3() {
	r.timed("fig3", func() {
		tl, err := experiments.RunLatencyTimeline(r.scale, r.seed)
		if err != nil {
			fatalf("fig3: %v", err)
		}
		r.emit("fig3-latency-timeline", &tl.Figure)
	})
}

func (r *runner) fig4(a, b, c bool) {
	r.timed("fig4", func() {
		fs, err := experiments.RunSkewSweep(r.scale, r.seed)
		if err != nil {
			fatalf("fig4: %v", err)
		}
		if a {
			r.emit("fig4a-overhead-vs-skew", &fs.Overhead)
		}
		if b {
			r.emit("fig4b-checkpoint-vs-skew", &fs.Checkpoint)
		}
		if c {
			r.emit("fig4c-recovery-vs-skew", &fs.Recovery)
		}
	})
}

func (r *runner) fig5() {
	r.timed("fig5", func() {
		gr, err := experiments.RunGameTrace(r.scale, r.seed)
		if err != nil {
			fatalf("fig5: %v", err)
		}
		r.emitTable("Table 5: game trace characteristics", gr.Table5())
		fmt.Printf("measured trace: %s\n", gr.TraceStats)
		r.emitTable("Figure 5: overhead / checkpoint / recovery on the game trace", gr.Bars)
	})
}

func (r *runner) fig6() {
	r.timed("fig6", func() {
		vr, err := experiments.RunValidation(r.scale, experiments.ValidationOptions{Seed: r.seed, Shards: r.shards})
		if err != nil {
			fatalf("fig6: %v", err)
		}
		r.emit("fig6a-validation-overhead", &vr.Overhead)
		r.emit("fig6b-validation-checkpoint", &vr.Checkpoint)
		r.emit("fig6c-validation-recovery", &vr.Recovery)
		fmt.Println("note: implementation overhead is instrumented checkpoint work " +
			"(GC-noise-free), baseline-subtracted; see EXPERIMENTS.md")
	})
}

func (r *runner) ablationC() {
	r.timed("ablation-c", func() {
		ckpt, rec, err := experiments.RunAblationFullEvery(r.scale, r.seed)
		if err != nil {
			fatalf("ablation-c: %v", err)
		}
		r.emit("ablation-fullevery-checkpoint", ckpt)
		r.emit("ablation-fullevery-recovery", rec)
	})
}

func (r *runner) ablationSorted() {
	r.emit("ablation-sorted-writes", experiments.RunAblationSortedWrites(r.scale))
}

func (r *runner) logging() {
	fig := experiments.RunLoggingFeasibility(r.scale)
	r.emit("extension-logging-feasibility", fig)
	fmt.Printf("physical logging saturates the disk at ≈%.0f updates/tick\n",
		experiments.MaxPhysicalLoggingRate(r.scale))
}

func (r *runner) ksafety() {
	r.timed("ksafety", func() {
		tab, err := experiments.RunKSafetyComparison(r.scale, r.seed)
		if err != nil {
			fatalf("ksafety: %v", err)
		}
		r.emitTable("Extension: checkpoint recovery vs K-safe replication (Section 7)", tab)
	})
}

func (r *runner) multiserver() {
	r.timed("multiserver", func() {
		ms, err := experiments.RunMultiServer(r.scale, r.seed)
		if err != nil {
			fatalf("multiserver: %v", err)
		}
		r.emit("extension-multiserver-recovery", &ms.Recovery)
		r.emit("extension-multiserver-overhead", &ms.TickOverhead)
		r.emit("extension-multiserver-imbalance", &ms.Imbalance)
		fmt.Println("note: multiserver is the cost-model analysis; " +
			"-exp clusterbench measures the same quantities on the real internal/cluster deployment")
	})
}

func (r *runner) clusterbench() {
	r.timed("clusterbench", func() {
		var sizes []int
		for _, v := range splitList(r.clustSize) {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				fatalf("clusterbench: bad -cluster-sizes entry %q", v)
			}
			sizes = append(sizes, n)
		}
		var modes []cluster.RecoveryMode
		for _, v := range splitList(r.clustRec) {
			m, err := cluster.ParseRecoveryMode(v)
			if err != nil {
				fatalf("clusterbench: bad -cluster-recovery-modes entry %q", v)
			}
			modes = append(modes, m)
		}
		cb, err := experiments.RunClusterBench(r.scale, r.seed, experiments.ClusterBenchOptions{
			Scenarios:     splitList(r.clustScen),
			Sizes:         sizes,
			RecoveryModes: modes,
			Coordinations: splitList(r.clustCoord),
			MaxSkew:       r.clustSkew,
		})
		if err != nil {
			fatalf("clusterbench: %v", err)
		}
		r.emitTable("Cluster bench: scenario × nodes × coordination (ticks / cuts / whole-world recovery / migration)",
			cb.Table())
		r.emit("clusterbench-tick", &cb.Tick)
		r.emit("clusterbench-recovery", &cb.Recovery)
		// Zero-blackout is enforced per cell inside RunClusterBench (a
		// nonzero count fails the cell), as is the skew coordinator's
		// wait ≈ 0 honesty bound; only identity is checked here.
		for _, row := range cb.Rows {
			if !row.Identical {
				fatalf("clusterbench: %s/nodes=%d/%s NOT byte-identical to the single-node reference",
					row.Scenario, row.Nodes, row.Coordination)
			}
		}
		fmt.Printf("cluster crash equivalence: all %d rows byte-identical to the single-node reference, zero migration blackout\n",
			len(cb.Rows))
		fmt.Println("note: clusterbench measures the real internal/cluster subsystem; " +
			"-exp multiserver is its analytical cost-model companion")
	})
}

func (r *runner) chaosbench() {
	r.timed("chaosbench", func() {
		var seeds []int64
		for _, v := range splitList(r.chaosSeed) {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				fatalf("chaosbench: bad -chaos-seeds entry %q", v)
			}
			seeds = append(seeds, n)
		}
		rep, err := experiments.RunChaosBench(r.scale, experiments.ChaosBenchOptions{
			Scenarios: splitList(r.chaosScen),
			Sites:     splitList(r.chaosSite),
			Seeds:     seeds,
		})
		if err != nil {
			fatalf("chaosbench: %v", err)
		}
		r.emitTable("Chaos bench: scenario × fault site × seed (injected faults vs degradation paths)",
			rep.Table())
		// Byte identity under injected faults is the whole point: a failed
		// cell means a degradation path lost state, and the (seed, site)
		// pair printed below replays the exact fault schedule.
		if failed := rep.Failed(); len(failed) > 0 {
			for _, c := range failed {
				fmt.Fprintf(os.Stderr, "chaosbench: FAILED %s/%s seed=%d: %s\n",
					c.Scenario, c.Site, c.Seed, c.Detail)
			}
			fatalf("chaosbench: %d of %d fault schedules failed; replay any with -chaos-scenarios/-chaos-sites/-chaos-seeds",
				len(failed), len(rep.Cells))
		}
		fmt.Printf("chaos equivalence: %d fault schedules, %d degraded cleanly, 0 failed — every cell byte-identical to its never-faulted reference\n",
			len(rep.Cells), rep.Degraded())
	})
}

func (r *runner) gatewaybench() {
	r.timed("gatewaybench", func() {
		var profiles []session.Profile
		for _, v := range splitList(r.gwProf) {
			profiles = append(profiles, session.Profile(v))
		}
		var sizes []int
		for _, v := range splitList(r.gwSize) {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				fatalf("gatewaybench: bad -gateway-sizes entry %q", v)
			}
			sizes = append(sizes, n)
		}
		gb, err := experiments.RunGatewayBench(r.scale, r.seed, experiments.GatewayBenchOptions{
			Profiles: profiles,
			Sizes:    sizes,
			Clients:  r.gwClients,
		})
		if err != nil {
			fatalf("gatewaybench: %v", err)
		}
		r.emitTable("Gateway bench: churn profile × nodes (client capacity / intent→visible latency / churn / crash equivalence)",
			gb.Table())
		r.emit("gatewaybench-capacity", &gb.Capacity)
		r.emit("gatewaybench-latency", &gb.Latency)
		// Identity covers both legs: per-tick update sets matched the
		// independent reference instance tick for tick, and the recovered
		// world matched its final bytes.
		for _, row := range gb.Rows {
			if !row.Identical {
				fatalf("gatewaybench: %s/nodes=%d NOT byte-identical to the reference gateway instance",
					row.Profile, row.Nodes)
			}
		}
		fmt.Printf("session crash equivalence: all %d rows byte-identical to an independent gateway+driver reference\n",
			len(gb.Rows))
	})
}

func (r *runner) sharding() {
	r.timed("sharding", func() {
		sr, err := experiments.RunShardScaling(r.scale, r.seed, []int{1, 2, 4, 8})
		if err != nil {
			fatalf("sharding: %v", err)
		}
		r.emitTable("Sharded engine: apply throughput and flush wall time vs shard count", sr.Table())
		r.emit("sharding-apply-throughput", &sr.Apply)
		r.emit("sharding-flush-time", &sr.Flush)
	})
}

func (r *runner) recoverytime() {
	r.timed("recoverytime", func() {
		var logLens []int
		if r.recLog > 0 {
			logLens = []int{r.recLog}
		}
		rt, err := experiments.RunRecoveryTime(r.scale, r.seed, []int{1, 2, 4, 8}, logLens, r.recDisk)
		if err != nil {
			fatalf("recoverytime: %v", err)
		}
		r.emitTable("Recovery pipeline: ΔTrestore / ΔTreplay / pipeline total vs shard count", rt.Table())
		r.emit("recoverytime-restore", &rt.Restore)
		r.emit("recoverytime-replay", &rt.Replay)
		r.emit("recoverytime-total", &rt.Total)
	})
}

func (r *runner) failovertime() {
	r.timed("failovertime", func() {
		single := func(v int) []int {
			if v > 0 {
				return []int{v}
			}
			return nil
		}
		ft, err := experiments.RunFailoverTime(r.scale, r.seed,
			single(r.foUpd), single(r.foLag), single(r.foShards), r.foLog, r.recDisk)
		if err != nil {
			fatalf("failovertime: %v", err)
		}
		r.emitTable("Failover: warm-standby takeover vs cold recovery", ft.Table())
		r.emit("failovertime-takeover", &ft.Takeover)
		r.emit("failovertime-cold", &ft.Cold)
		for _, row := range ft.Rows {
			// Byte-identity is unconditional: a promoted standby that
			// differs from cold recovery is corrupt, whatever the timing.
			if !row.Identical {
				fatalf("failovertime: promoted standby NOT byte-identical to cold recovery (updates=%d lag=%d shards=%d)",
					row.Updates, row.LagBudget, row.Shards)
			}
			if r.foCheck && row.Takeover >= row.ColdPipeline {
				fatalf("failovertime: warm takeover %v not below cold pipeline %v (updates=%d lag=%d shards=%d)",
					row.Takeover, row.ColdPipeline, row.Updates, row.LagBudget, row.Shards)
			}
		}
		if r.foCheck {
			fmt.Printf("failover-check passed: warm takeover strictly below cold pipeline in all %d rows, all byte-identical\n",
				len(ft.Rows))
		}
	})
}

func (r *runner) scenariobench() {
	r.timed("scenariobench", func() {
		sopts := experiments.ScenarioBenchOptions{
			Scenarios:       splitList(r.benchScen),
			DiskBytesPerSec: r.benchDisk,
		}
		// The preflight refuses a stale committed baseline before any
		// benchmark time is spent: with -gate it runs ahead of the sweep,
		// with -gate-preflight it is the whole (fail-fast CI) step.
		if r.gate || r.gatePre {
			want := experiments.ExpectedBenchConfig(r.scale, r.seed, sopts)
			if err := experiments.PreflightBaseline(r.benchBase, want); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("gate preflight passed: %s is comparable with this sweep config\n", r.benchBase)
			if r.gatePre {
				r.ran++
				return
			}
		}
		rep, err := experiments.RunScenarioBench(r.scale, r.seed, sopts)
		if err != nil {
			fatalf("scenariobench: %v", err)
		}
		r.emitTable("Scenario bench: workload × method × shards (apply / checkpoint / recovery / failover)",
			rep.Table())
		// The report is written before any verdict: a corrupt or regressed
		// run still leaves the artifact on disk for CI to archive, which is
		// exactly when the numbers are needed.
		if err := rep.WriteJSON(r.benchOut); err != nil {
			fatalf("scenariobench: %v", err)
		}
		fmt.Printf("(report written to %s)\n", r.benchOut)
		// Byte identity is unconditional: whatever the timings, a recovery
		// path that reconstructs different bytes is corrupt.
		for _, c := range rep.Cells {
			if !c.Identical {
				fatalf("scenariobench: %s/%s/shards=%d NOT byte-identical to the serial reference",
					c.Scenario, c.Method, c.Shards)
			}
		}
		fmt.Printf("crash equivalence: all %d cells byte-identical to the serial reference\n", len(rep.Cells))
		if r.writeBase {
			if err := rep.WriteJSON(r.benchBase); err != nil {
				fatalf("scenariobench: %v", err)
			}
			fmt.Printf("(baseline written to %s — commit it with your change)\n", r.benchBase)
		}
		if r.gate {
			// Read the emitted file back so the gate also validates what CI
			// archives, not just the in-memory report.
			fresh, err := experiments.ReadBenchReport(r.benchOut)
			if err != nil {
				fatalf("perf-gate: %v", err)
			}
			base, err := experiments.ReadBenchReport(r.benchBase)
			if err != nil {
				fatalf("perf-gate: %v (regenerate with -write-baseline)", err)
			}
			res, err := experiments.CompareBench(base, fresh, r.gateTol)
			if err != nil {
				fatalf("perf-gate: %v", err)
			}
			r.emitTable(fmt.Sprintf("Perf gate: %s vs %s (tolerance %.0f%%)",
				r.benchOut, r.benchBase, 100*r.gateTol), res.Delta)
			for _, n := range res.Notes {
				fmt.Printf("note: %s\n", n)
			}
			if len(res.Violations) > 0 {
				for _, v := range res.Violations {
					fmt.Fprintf(os.Stderr, "perf-gate: REGRESSION: %s\n", v)
				}
				fatalf("perf-gate: %d regression(s) beyond the %.0f%% band; if intentional, refresh the baseline:\n  go run ./cmd/experiments -exp scenariobench -scale %s -write-baseline",
					len(res.Violations), 100*r.gateTol, r.scale)
			}
			fmt.Printf("perf-gate passed: %d cells within the %.0f%% band\n", len(base.Cells), 100*r.gateTol)
		}
	})
}

func (r *runner) ablationHW() {
	r.timed("ablation-hw", func() {
		diskFig, memFig, err := experiments.RunAblationHardware(r.scale, r.seed)
		if err != nil {
			fatalf("ablation-hw: %v", err)
		}
		r.emit("ablation-disk-bandwidth", diskFig)
		r.emit("ablation-mem-bandwidth", memFig)
	})
}
