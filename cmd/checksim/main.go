// Command checksim runs the checkpoint simulator for one configuration and
// prints its metrics — the direct analogue of one data point in the paper's
// figures.
//
// Usage:
//
//	checksim -method cou -updates 64000 -skew 0.8 -ticks 1000
//	checksim -method all -updates 8000
//	checksim -trace battle.trace -method naive
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/gamestate"
	"repro/internal/metrics"
	"repro/internal/trace"
)

var methodNames = map[string]checkpoint.Method{
	"naive":   checkpoint.NaiveSnapshot,
	"dribble": checkpoint.DribbleCopyOnUpdate,
	"atomic":  checkpoint.AtomicCopyDirtyObjects,
	"pr":      checkpoint.PartialRedo,
	"cou":     checkpoint.CopyOnUpdate,
	"coupr":   checkpoint.CopyOnUpdatePartialRedo,
}

func main() {
	var (
		method    = flag.String("method", "all", "naive|dribble|atomic|pr|cou|coupr|all")
		updates   = flag.Int("updates", 64000, "updates per tick (zipf trace)")
		skew      = flag.Float64("skew", 0.8, "zipf skew in [0,1)")
		ticks     = flag.Int("ticks", 1000, "number of ticks")
		rows      = flag.Int("rows", 1_000_000, "table rows")
		cols      = flag.Int("cols", 10, "table columns")
		fullEvery = flag.Int("full-every", 10, "C: full checkpoint period for partial-redo methods")
		seed      = flag.Int64("seed", 1, "trace seed")
		traceFile = flag.String("trace", "", "binary trace file (overrides zipf flags)")
	)
	flag.Parse()

	cfg := checkpoint.DefaultConfig()
	cfg.Table = gamestate.Table{Rows: *rows, Cols: *cols, CellSize: 4, ObjSize: 512}
	cfg.FullEvery = *fullEvery

	var src trace.Source
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		mem, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		src = mem
		// Size the table to the trace if the defaults don't cover it.
		if mem.NumCells() > cfg.Table.NumCells() {
			cfg.Table.Rows = (mem.NumCells() + *cols - 1) / *cols
		}
		fmt.Printf("trace: %s\n", trace.Measure(mem))
	} else {
		z, err := trace.NewZipfian(trace.ZipfianConfig{
			Table:          cfg.Table,
			UpdatesPerTick: *updates,
			Ticks:          *ticks,
			Skew:           *skew,
			Seed:           *seed,
		})
		if err != nil {
			fatal(err)
		}
		src = z
		fmt.Printf("zipf trace: %d updates/tick, skew %.2f, %d ticks over %s\n",
			*updates, *skew, *ticks, cfg.Table)
	}

	var methods []checkpoint.Method
	if *method == "all" {
		methods = checkpoint.Methods()
	} else {
		m, ok := methodNames[strings.ToLower(*method)]
		if !ok {
			fatal(fmt.Errorf("unknown method %q (naive|dribble|atomic|pr|cou|coupr|all)", *method))
		}
		methods = []checkpoint.Method{m}
	}

	results, err := checkpoint.RunAll(methods, cfg, src)
	if err != nil {
		fatal(err)
	}
	t := metrics.NewTextTable()
	t.Header("method", "avg overhead/tick", "max overhead", "ckpts",
		"avg ckpt time", "avg objects", "est. restore", "est. recovery")
	for _, r := range results {
		t.Row(r.Method.String(),
			metrics.FormatDuration(r.AvgOverhead),
			metrics.FormatDuration(r.MaxOverhead),
			fmt.Sprint(len(r.Checkpoints)),
			metrics.FormatDuration(r.AvgCheckpointTime),
			fmt.Sprintf("%.0f", r.AvgObjects),
			metrics.FormatDuration(r.RestoreTime),
			metrics.FormatDuration(r.RecoveryTime))
	}
	fmt.Print(t.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "checksim:", err)
	os.Exit(1)
}
