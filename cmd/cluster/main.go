// Command cluster runs a tick-synchronized multi-node world as real
// processes over TCP: N node processes each serve a full engine over their
// partition of the object space, and one coordinator routes every tick's
// updates to the owner nodes, enforcing the tick barrier (no node applies
// tick T+1 before all acknowledged T), driving coordinated checkpoints at
// common cut ticks, and verifying the world against a locally computed
// single-node reference.
//
// Terminal 1..N (one per node):
//
//	cluster -role node -listen :7801 -dir /tmp/cluster-node-0
//	cluster -role node -listen :7802 -dir /tmp/cluster-node-1
//
// Terminal 0 (the coordinator):
//
//	cluster -role coord -nodes localhost:7801,localhost:7802 \
//	    -scenario hotspot -ticks 200 -updates 6400 -checkpoint-every 64
//
// Restarting the same command line after killing the nodes recovers the
// world: each node crash-recovers its partition on startup (image + own
// WAL) and reports its recovered tick. Nodes killed mid-run may disagree —
// an unsynced WAL tail dies with its process — so the coordinator heals
// the skew instead of refusing it: the workload is a pure function of
// (config, tick), so it re-drives each lagging node from that node's own
// recovered tick (nodes already past a tick are simply not sent it) until
// the world is aligned, then continues the scenario. Verification hashes
// each node's owned ranges against the reference; a mismatch exits
// non-zero.
//
// A third role runs the whole lifecycle in one process to demonstrate the
// recovery-mode ladder (peer-RAM replicas and warm standbys need live peers,
// which the TCP roles' independent process restarts cannot model):
//
//	cluster -role world -world-nodes 4 -recovery-mode auto \
//	    -scenario hotspot -ticks 200 -updates 6400 -checkpoint-every 64
//
// runs the scenario on an in-process cluster, crashes it at the final tick
// barrier, recovers every partition down the -recovery-mode ladder
// (auto: peer-RAM → standby → disk), prints which mode actually served each
// partition and why any rung fell through, and verifies the recovered world
// byte-for-byte against the single-node reference.
//
// -coordination skew runs the world role under the bounded-skew discipline
// (internal/skew) instead of the lock-step barrier: each node runs up to
// -max-skew ticks ahead of the slowest, checkpoints are per-node and
// staggered (-checkpoint-every, no coordinated cut), the crash leaves the
// nodes at different ticks on purpose, and recovery reconstructs the
// consistent cut from the logged-message store (skew.Recover), rolls the
// laggards forward, re-dispatches the rolled-back ticks and verifies the
// same byte identity. -recovery-mode does not apply: cut reconstruction
// rides the disk pipeline.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"hash/crc32"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/gamestate"
	"repro/internal/peerram"
	"repro/internal/replication"
	"repro/internal/skew"
	"repro/internal/telemetry"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	var (
		role     = flag.String("role", "", "node | coord | world")
		listen   = flag.String("listen", ":7801", "node: address to accept the coordinator on")
		dir      = flag.String("dir", "", "node: engine directory (recovered if it holds prior state)")
		nodes    = flag.String("nodes", "", "coord: comma-separated node addresses, partition order")
		rows     = flag.Int("rows", 100_000, "table rows (quick-scale default)")
		cols     = flag.Int("cols", 10, "table columns")
		scenario = flag.String("scenario", "hotspot", "coord: workload scenario, one of "+strings.Join(workload.Names(), ", "))
		ticks    = flag.Int("ticks", 200, "coord: scenario length in ticks")
		updates  = flag.Int("updates", 6400, "coord: baseline updates per tick")
		skew     = flag.Float64("skew", 0.8, "coord: scenario skew in [0,1)")
		seed     = flag.Int64("seed", 1, "coord: workload seed")
		ckptEach = flag.Int("checkpoint-every", 64, "coord: coordinated world checkpoint interval in ticks (0 = only at the end)")
		shards   = flag.Int("shards", 1, "node: engine shards")
		mode     = flag.String("mode", "cou", "node: checkpoint method (cou | naive)")
		wnodes   = flag.Int("world-nodes", 2, "world: in-process node count")
		recMode  = flag.String("recovery-mode", "auto", "world: recovery ladder (auto | peerram | standby | disk); barrier coordination only")
		coord    = flag.String("coordination", "barrier", "world: tick coordination (barrier | skew)")
		maxSkew  = flag.Int("max-skew", 4, "world: bounded-skew window in ticks (skew coordination)")
		netTO    = flag.Duration("net-timeout", 30*time.Second,
			"bound on dial/accept and on any single command-stream read; a dead peer "+
				"surfaces a typed timeout error instead of hanging (0 = wait forever)")
		telAddr = flag.String("telemetry-addr", "",
			"serve live telemetry (/metrics, /spans.json, /debug/pprof) on this address; "+
				"empty keeps collection off with zero overhead")
	)
	flag.Parse()
	if *telAddr != "" {
		ts, err := telemetry.Serve(*telAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer ts.Close() //nolint:errcheck // process exit
		log.Printf("cluster: telemetry on http://%s/metrics", ts.Addr)
	}
	table := gamestate.Table{Rows: *rows, Cols: *cols, CellSize: 4, ObjSize: 512}
	switch *role {
	case "node":
		runNode(table, *listen, *dir, *shards, *mode, *netTO)
	case "coord":
		runCoord(table, *nodes, *scenario, *ticks, *updates, *skew, *seed, *ckptEach, *netTO)
	case "world":
		switch *coord {
		case "barrier":
			rm, err := cluster.ParseRecoveryMode(*recMode)
			if err != nil {
				log.Fatal(err)
			}
			runWorld(table, *dir, *wnodes, *scenario, *ticks, *updates, *skew, *seed, *ckptEach, *shards, rm)
		case "skew":
			runWorldSkew(table, *dir, *wnodes, *scenario, *ticks, *updates, *skew, *seed, *ckptEach, *shards, *maxSkew)
		default:
			log.Fatalf("cluster: -coordination must be barrier or skew, got %q", *coord)
		}
	default:
		fmt.Fprintln(os.Stderr, "cluster: -role must be node, coord or world")
		flag.Usage()
		os.Exit(2)
	}
}

// runWorld runs the scenario on an in-process cluster, crashes it at the
// final barrier, and recovers it down the requested recovery-mode ladder,
// reporting which rung actually served each partition.
func runWorld(table gamestate.Table, dir string, nodes int, scenario string, ticks, updates int,
	skew float64, seed int64, ckptEach, shards int, rmode cluster.RecoveryMode) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "cluster-world")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	src, err := workload.New(scenario, workload.Config{
		Table: table, UpdatesPerTick: updates, Ticks: ticks, Skew: skew, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	opts := cluster.Options{
		Table: table, Dir: dir, Mode: engine.ModeCopyOnUpdate, Nodes: nodes, Shards: shards,
	}
	var mesh *peerram.Mesh
	if rmode == cluster.RecoveryAuto || rmode == cluster.RecoveryPeerRAM {
		mesh = peerram.NewMesh(cluster.Uniform(table.NumObjects(), nodes).NumNodes, peerram.Options{})
		opts.PeerRAM = mesh
	}
	c, err := cluster.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	eff := len(c.Nodes())
	log.Printf("world: %d nodes over %d objects, recovery mode %s", eff, table.NumObjects(), rmode)

	// The standby rung mirrors every node over the warm-standby stream.
	var standbys []*replication.Standby
	var shippers []*replication.Shipper
	if rmode == cluster.RecoveryAuto || rmode == cluster.RecoveryStandby {
		for i, n := range c.Nodes() {
			pc, sc := net.Pipe()
			sb, err := replication.StartStandby(engine.Options{
				Table: table, Dir: fmt.Sprintf("%s/standby-%d", dir, i),
				Mode: engine.ModeCopyOnUpdate, Shards: shards,
			}, sc)
			if err != nil {
				log.Fatalf("world: standby %d: %v", i, err)
			}
			sh, err := replication.StartShipper(n.E, pc, replication.ShipperOptions{MaxLagTicks: 64})
			if err != nil {
				log.Fatalf("world: shipper %d: %v", i, err)
			}
			select {
			case <-sb.Ready():
			case <-sb.Done():
				log.Fatalf("world: standby %d died during bootstrap: %v", i, sb.Err())
			}
			standbys, shippers = append(standbys, sb), append(shippers, sh)
		}
	}

	var cells []uint32
	var batch []wal.Update
	t0 := time.Now()
	for t := 0; t < ticks; t++ {
		cells, batch = workload.TickUpdates(src, t, cells, batch)
		if err := c.Tick(batch); err != nil {
			log.Fatalf("world: tick %d: %v", t, err)
		}
		if ckptEach > 0 && (t+1)%ckptEach == 0 && t != ticks-1 {
			if _, err := c.CheckpointWorld(); err != nil {
				log.Fatalf("world: checkpoint after tick %d: %v", t, err)
			}
		}
	}
	log.Printf("world: %d ticks in %v", ticks, time.Since(t0).Round(time.Millisecond))
	for i, sh := range shippers {
		if err := sh.AwaitAck(uint64(ticks)-1, 30*time.Second); err != nil {
			log.Fatalf("world: standby %d behind at the crash: %v", i, err)
		}
		sh.Stop() //nolint:errcheck // stream teardown
	}
	if err := c.Close(); err != nil { // crash at the final tick barrier
		log.Fatal(err)
	}
	if mesh != nil {
		var sum int64
		for _, b := range mesh.MemStats() {
			sum += b
		}
		log.Printf("world: crash; surviving peers hold %.1f KB of compressed replicas (%.1f KB/node)",
			float64(sum)/1024, float64(sum)/1024/float64(eff))
	} else {
		log.Printf("world: crash")
	}

	rc, wr, err := cluster.Recover(dir, cluster.Options{
		Mode: engine.ModeCopyOnUpdate, Shards: shards,
		RecoveryMode: rmode, PeerRAM: mesh, Standbys: standbys,
	})
	if err != nil {
		log.Fatalf("world: recovery: %v", err)
	}
	defer rc.Close()
	for _, sb := range standbys {
		defer sb.Close()
	}
	for i, m := range wr.Modes {
		line := fmt.Sprintf("world: partition %d recovered via %s", i, m)
		if wr.Fallbacks[i] != "" {
			line += fmt.Sprintf(" (fell through: %s)", wr.Fallbacks[i])
		}
		log.Print(line)
	}
	log.Printf("world: recovered to tick %d in %v (slowest partition)", wr.WorldTick, wr.Wall.Round(time.Millisecond))

	// Verify per cell against the single-node serial reference.
	ref, err := engine.Open(engine.Options{Table: table, Mode: engine.ModeNone, InMemory: true, Shards: 1})
	if err != nil {
		log.Fatal(err)
	}
	for t := 0; t < ticks; t++ {
		cells, batch = workload.TickUpdates(src, t, cells, batch)
		if err := ref.ApplyTick(batch); err != nil {
			log.Fatal(err)
		}
	}
	got := make([]byte, table.StateBytes())
	if err := rc.ReadWorld(got); err != nil {
		log.Fatal(err)
	}
	if wr.WorldTick != uint64(ticks) || !bytes.Equal(got, ref.Store().Slab()) {
		log.Fatalf("world: recovered state DIVERGED from the single-node reference (tick %d, want %d)",
			wr.WorldTick, ticks)
	}
	ref.Close()
	fmt.Printf("world verified: %d nodes recovered via [%s] at tick %d — byte-identical to the single-node reference\n",
		eff, joinModes(wr.Modes), ticks)
}

// runWorldSkew runs the scenario on an in-process bounded-skew cluster:
// nodes tick up to maxSkew apart with staggered per-node checkpoints, the
// crash leaves them at different ticks on purpose, skew.Recover
// reconstructs the consistent cut from the logged-message store and rolls
// the laggards forward, the coordinator re-dispatches the rolled-back ticks
// (the workload is pure), and the result is verified byte-for-byte against
// the single-node reference.
func runWorldSkew(table gamestate.Table, dir string, nodes int, scenario string, ticks, updates int,
	wskew float64, seed int64, ckptEach, shards, maxSkew int) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "cluster-skew-world")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	src, err := workload.New(scenario, workload.Config{
		Table: table, UpdatesPerTick: updates, Ticks: ticks, Skew: wskew, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	c, err := skew.New(skew.Options{
		Table: table, Dir: dir, Mode: engine.ModeCopyOnUpdate,
		Nodes: nodes, Shards: shards, MaxSkew: maxSkew, CheckpointEvery: ckptEach,
	})
	if err != nil {
		log.Fatal(err)
	}
	eff := len(c.Nodes())
	log.Printf("world: %d nodes over %d objects, bounded-skew window %d, per-node checkpoints every %d ticks",
		eff, table.NumObjects(), maxSkew, ckptEach)

	var cells []uint32
	var batch []wal.Update
	t0 := time.Now()
	for t := 0; t < ticks; t++ {
		cells, batch = workload.TickUpdates(src, t, cells, batch)
		if err := c.Tick(batch); err != nil {
			log.Fatalf("world: tick %d: %v", t, err)
		}
	}
	log.Printf("world: %d ticks dispatched in %v (coordinator blocked on the window for %v total)",
		ticks, time.Since(t0).Round(time.Millisecond), c.WindowWait().Round(time.Millisecond))
	applied := make([]uint64, eff)
	for i := range applied {
		applied[i] = c.AppliedTick(i)
	}
	if err := c.Crash(); err != nil { // mid-window: nodes at different ticks
		log.Fatal(err)
	}
	log.Printf("world: crash with node ticks %v", applied)

	rc, wr, err := skew.Recover(dir, skew.Options{Mode: engine.ModeCopyOnUpdate, Shards: shards})
	if err != nil {
		log.Fatalf("world: recovery: %v", err)
	}
	defer rc.Close()
	log.Printf("world: cut reconstructed at tick %d; rolled forward %v ticks per node; recovered in %v (slowest partition)",
		wr.Cut, wr.RolledForward, wr.Wall.Round(time.Millisecond))
	for t := int(wr.WorldTick); t < ticks; t++ {
		cells, batch = workload.TickUpdates(src, t, cells, batch)
		if err := rc.Tick(batch); err != nil {
			log.Fatalf("world: re-dispatch tick %d: %v", t, err)
		}
	}
	if err := rc.Join(); err != nil {
		log.Fatal(err)
	}

	// Verify per cell against the single-node serial reference.
	ref, err := engine.Open(engine.Options{Table: table, Mode: engine.ModeNone, InMemory: true, Shards: 1})
	if err != nil {
		log.Fatal(err)
	}
	for t := 0; t < ticks; t++ {
		cells, batch = workload.TickUpdates(src, t, cells, batch)
		if err := ref.ApplyTick(batch); err != nil {
			log.Fatal(err)
		}
	}
	got := make([]byte, table.StateBytes())
	if err := rc.ReadWorld(got); err != nil {
		log.Fatal(err)
	}
	if rc.NextTick() != uint64(ticks) || !bytes.Equal(got, ref.Store().Slab()) {
		log.Fatalf("world: recovered state DIVERGED from the single-node reference (tick %d, want %d)",
			rc.NextTick(), ticks)
	}
	ref.Close()
	fmt.Printf("world verified: %d nodes, cut %d, window %d — byte-identical to the single-node reference at tick %d\n",
		eff, wr.Cut, maxSkew, ticks)
}

// joinModes renders the per-partition served modes compactly.
func joinModes(modes []cluster.RecoveryMode) string {
	parts := make([]string, len(modes))
	for i, m := range modes {
		parts[i] = m.String()
	}
	return strings.Join(parts, ",")
}

func runNode(table gamestate.Table, listen, dir string, shards int, mode string, netTO time.Duration) {
	if dir == "" {
		log.Fatal("cluster: -dir is required for a node")
	}
	m := engine.ModeCopyOnUpdate
	if mode == "naive" {
		m = engine.ModeNaiveSnapshot
	}
	e, pres, err := engine.RecoverFrom(engine.Options{Table: table, Dir: dir, Mode: m, Shards: shards})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	if pres.Restored || pres.NextTick > 0 {
		log.Printf("node: recovered to tick %d in %v (restore %v ∥ replay %v)",
			pres.NextTick, pres.TotalDuration.Round(time.Millisecond),
			pres.RestoreDuration.Round(time.Millisecond), pres.ReplayDuration.Round(time.Millisecond))
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("node: serving partition on %s (world tick %d)", listen, e.NextTick())
	conn, err := replication.AcceptWithin(ln, netTO)
	if err != nil {
		log.Fatal(err)
	}
	ln.Close()
	// The coordinator sends commands at tick pacing; a read stalled past
	// the idle bound means it died mid-run — fail typed instead of hanging.
	if err := cluster.ServeNode(replication.NewIdleConn(conn, netTO), e); err != nil {
		log.Fatalf("node: session failed: %v", err)
	}
	log.Printf("node: coordinator session over; world tick %d, state durable in %s", e.NextTick(), dir)
}

func runCoord(table gamestate.Table, nodeList, scenario string, ticks, updates int,
	skew float64, seed int64, ckptEach int, netTO time.Duration) {
	addrs := strings.Split(nodeList, ",")
	if nodeList == "" || len(addrs) == 0 {
		log.Fatal("cluster: -nodes is required for the coordinator")
	}
	src, err := workload.New(scenario, workload.Config{
		Table: table, UpdatesPerTick: updates, Ticks: ticks, Skew: skew, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := cluster.Uniform(table.NumObjects(), len(addrs))
	if m.NumNodes != len(addrs) {
		log.Fatalf("cluster: %d nodes given but the %d-object world partitions into %d (power-of-two spans of ≥64 objects; use exactly that many node processes)",
			len(addrs), table.NumObjects(), m.NumNodes)
	}

	remotes := make([]*cluster.RemoteNode, m.NumNodes)
	nexts := make([]uint64, m.NumNodes)
	for i, addr := range addrs {
		conn, err := replication.Dial(strings.TrimSpace(addr), netTO)
		if err != nil {
			log.Fatalf("cluster: node %d (%s): %v", i, addr, err)
		}
		// Barrier acks arrive within a tick's apply time; bound the wait so
		// a node that died mid-tick fails the run typed instead of wedging it.
		rn, next, err := cluster.Attach(replication.NewIdleConn(conn, netTO), table)
		if err != nil {
			log.Fatalf("cluster: node %d (%s): %v", i, addr, err)
		}
		remotes[i] = rn
		nexts[i] = next
	}
	start, aligned := nexts[0], nexts[0]
	for _, n := range nexts {
		if n < start {
			start = n
		}
		if n > aligned {
			aligned = n
		}
	}
	if aligned > 0 {
		log.Printf("coord: resuming a recovered world (node ticks %v)", nexts)
	}
	if start != aligned {
		// Nodes killed mid-run lose their unsynced WAL tails unevenly; the
		// deterministic workload lets lagging nodes re-apply exactly the
		// ticks they lost.
		log.Printf("coord: healing %d ticks of skew: re-driving lagging nodes from tick %d to %d",
			aligned-start, start, aligned)
	}
	if int(start) >= ticks {
		log.Fatalf("coord: world already at tick %d, scenario ends at %d", start, ticks)
	}

	perNode := make([][]wal.Update, m.NumNodes)
	var cells []uint32
	var batch []wal.Update
	cellsPerObj := uint32(table.CellsPerObject())
	barrier := time.Duration(0)
	t0 := time.Now()
	for t := int(start); t < ticks; t++ {
		cells, batch = workload.TickUpdates(src, t, cells, batch)
		perNode = cluster.RouteTick(m, cellsPerObj, batch, perNode)
		b0 := time.Now()
		for i, rn := range remotes { // send to all behind this tick…
			if nexts[i] > uint64(t) {
				continue // already applied pre-crash; healing skew
			}
			if err := rn.SendTick(uint64(t), perNode[i]); err != nil {
				log.Fatalf("coord: node %d: %v", i, err)
			}
		}
		for i, rn := range remotes { // …await all of them: the barrier
			if nexts[i] > uint64(t) {
				continue
			}
			if err := rn.AwaitTick(uint64(t)); err != nil {
				log.Fatalf("coord: node %d: %v", i, err)
			}
		}
		barrier += time.Since(b0)
		if (ckptEach > 0 && (t+1)%ckptEach == 0) || t == ticks-1 {
			c0 := time.Now()
			for i, rn := range remotes {
				img, err := rn.Checkpoint(uint64(t))
				if err != nil {
					log.Fatalf("coord: node %d checkpoint: %v", i, err)
				}
				if img.AsOfTick < uint64(t) {
					log.Fatalf("coord: node %d image as-of %d below cut %d", i, img.AsOfTick, t)
				}
			}
			log.Printf("coord: coordinated world checkpoint, cut tick %d (%v)",
				t, time.Since(c0).Round(time.Millisecond))
		}
	}
	ran := ticks - int(start)
	log.Printf("coord: %d ticks in %v (barrier tick mean %v)",
		ran, time.Since(t0).Round(time.Millisecond),
		(barrier / time.Duration(ran)).Round(time.Microsecond))

	// Verify the world per owned range against a locally applied reference.
	ref, err := engine.Open(engine.Options{Table: table, Mode: engine.ModeNone, InMemory: true, Shards: 1})
	if err != nil {
		log.Fatal(err)
	}
	for t := 0; t < ticks; t++ {
		cells, batch = workload.TickUpdates(src, t, cells, batch)
		if err := ref.ApplyTick(batch); err != nil {
			log.Fatal(err)
		}
	}
	slab := ref.Store().Slab()
	sz := table.ObjSize
	for i, rn := range remotes {
		for _, r := range m.NodeRanges(i) {
			got, err := rn.HashRange(r.Lo, r.Hi)
			if err != nil {
				log.Fatalf("coord: node %d: %v", i, err)
			}
			if want := crc32.ChecksumIEEE(slab[r.Lo*sz : r.Hi*sz]); got != want {
				log.Fatalf("coord: node %d range [%d,%d) hash %08x != reference %08x — WORLD DIVERGED",
					i, r.Lo, r.Hi, got, want)
			}
		}
		rn.Bye() //nolint:errcheck // session teardown
	}
	ref.Close()
	fmt.Printf("world verified: %d nodes, %d objects, tick %d — every owned range matches the single-node reference\n",
		m.NumNodes, table.NumObjects(), ticks)
}
