// Command mmorecover inspects and recovers a checkpointing engine directory:
// it reports both backup image headers, replays the logical log, and prints
// ΔTrestore / ΔTreplay — the recovery procedure of Section 4.2, runnable by
// hand.
//
// Usage:
//
//	mmorecover -dir /tmp/ka -rows 40000 -cols 13
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/gamestate"
)

func main() {
	var (
		dir     = flag.String("dir", "", "engine directory (required)")
		rows    = flag.Int("rows", 0, "table rows (required)")
		cols    = flag.Int("cols", 13, "table columns")
		objSize = flag.Int("objsize", 512, "atomic object size")
	)
	flag.Parse()
	if *dir == "" || *rows == 0 {
		fmt.Fprintln(os.Stderr, "mmorecover: -dir and -rows are required")
		os.Exit(2)
	}
	table := gamestate.Table{Rows: *rows, Cols: *cols, CellSize: 4, ObjSize: *objSize}
	if err := table.Validate(); err != nil {
		fatal(err)
	}

	// Inspect both images.
	var backups [2]*disk.Backup
	for i, name := range []string{"backup-a.img", "backup-b.img"} {
		dev, err := disk.OpenFile(filepath.Join(*dir, name))
		if err != nil {
			fatal(err)
		}
		defer dev.Close()
		b, err := disk.NewBackup(dev, table.NumObjects(), table.ObjSize)
		if err != nil {
			fatal(err)
		}
		backups[i] = b
		h, err := b.ReadHeader()
		switch {
		case err == disk.ErrNoImage:
			fmt.Printf("%s: no valid image\n", name)
		case err != nil:
			fmt.Printf("%s: %v\n", name, err)
		default:
			fmt.Printf("%s: epoch %d, as of tick %d, complete=%v\n",
				name, h.Epoch, h.AsOfTick, h.Complete)
		}
	}

	eng, err := engine.Open(engine.Options{Table: table, Dir: *dir, Mode: engine.ModeNone})
	if err != nil {
		fatal(err)
	}
	defer eng.Close()
	res := eng.Recovery()
	if res.Restored {
		fmt.Printf("restored image %d (epoch %d) consistent as of tick %d in %v\n",
			res.BackupIndex, res.Epoch, res.AsOfTick, res.RestoreDuration)
	} else {
		fmt.Println("no complete image: state starts zeroed")
	}
	fmt.Printf("replayed %d ticks (%d updates) in %v\n",
		res.ReplayedTicks, res.ReplayedUpdates, res.ReplayDuration)
	fmt.Printf("recovered through tick %d; next tick is %d\n",
		res.NextTick-1, res.NextTick)
	fmt.Printf("ΔTrecovery = ΔTrestore + ΔTreplay = %v\n",
		res.RestoreDuration+res.ReplayDuration)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mmorecover:", err)
	os.Exit(1)
}
