// Command replicate runs the live-replication pair as two real processes:
// a primary that serves a synthetic tick workload while shipping its WAL to
// one standby, and a standby that mirrors it and takes over when the
// primary exits.
//
// Terminal A (primary: runs the workload, ships, then "dies"):
//
//	replicate -role primary -listen :7777 -dir /tmp/repl-primary \
//	    -ticks 500 -updates 6400 -shards 4
//
// Terminal B (standby: bootstraps, mirrors, promotes on primary death):
//
//	replicate -role standby -connect localhost:7777 -dir /tmp/repl-standby \
//	    -shards 4
//
// Both processes print a state checksum at the end; matching checksums are
// the visible proof that promotion reconstructed the primary's final state
// bit for bit. The -dir directories must be fresh (the standby refuses to
// overwrite prior state). Geometry flags must match on both sides.
package main

import (
	"flag"
	"fmt"
	"hash/crc32"
	"log"
	"math/rand"
	"net"
	"os"
	"time"

	"repro"
	"repro/internal/telemetry"
)

func main() {
	var (
		role    = flag.String("role", "", "primary | standby")
		listen  = flag.String("listen", ":7777", "primary: address to accept the standby on")
		connect = flag.String("connect", "localhost:7777", "standby: primary address")
		dir     = flag.String("dir", "", "engine directory (must be fresh for the standby)")
		rows    = flag.Int("rows", 100_000, "table rows (1M cells at the default 10 cols)")
		cols    = flag.Int("cols", 10, "table columns")
		updates = flag.Int("updates", 6400, "primary: updates per tick")
		ticks   = flag.Int("ticks", 500, "primary: ticks to run before exiting (the 'crash')")
		tickMs  = flag.Int("tick-ms", 10, "primary: tick pacing in milliseconds (0 = unpaced)")
		shards  = flag.Int("shards", 1, "engine shards on this side")
		lag     = flag.Int("lag", 16, "primary: replay-lag budget in ticks")
		syncLog = flag.Bool("sync", false, "fsync the log at every tick")
		seed    = flag.Int64("seed", 1, "primary: workload seed")
		netTO   = flag.Duration("net-timeout", 30*time.Second,
			"bound on dial/accept and on any single stream read; a silently dead peer "+
				"surfaces a typed timeout error instead of hanging (0 = wait forever)")
		telAddr = flag.String("telemetry-addr", "",
			"serve live telemetry (/metrics, /spans.json, /debug/pprof) on this address; "+
				"empty keeps collection off with zero overhead")
	)
	flag.Parse()
	if *telAddr != "" {
		ts, err := telemetry.Serve(*telAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer ts.Close() //nolint:errcheck // process exit
		log.Printf("replicate: telemetry on http://%s/metrics", ts.Addr)
	}
	if *dir == "" {
		log.Fatal("replicate: -dir is required")
	}
	table := repro.Table{Rows: *rows, Cols: *cols, CellSize: 4, ObjSize: 512}
	opts := repro.EngineOptions{
		Table: table, Dir: *dir, Mode: repro.ModeCopyOnUpdate,
		Shards: *shards, SyncEveryTick: *syncLog,
	}
	switch *role {
	case "primary":
		runPrimary(opts, *listen, *updates, *ticks, *tickMs, *lag, *seed, *netTO)
	case "standby":
		runStandby(opts, *connect, *netTO)
	default:
		fmt.Fprintln(os.Stderr, "replicate: -role must be primary or standby")
		flag.Usage()
		os.Exit(2)
	}
}

func runPrimary(opts repro.EngineOptions, listen string, updates, ticks, tickMs, lag int, seed int64, netTO time.Duration) {
	e, err := repro.OpenEngine(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	if rec := e.Recovery(); rec.Restored || rec.NextTick > 0 {
		log.Printf("primary: recovered prior state to tick %d", rec.NextTick)
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("primary: waiting for a standby on %s", listen)
	conn, err := repro.AcceptWithin(ln, netTO)
	if err != nil {
		log.Fatal(err)
	}
	ln.Close()
	log.Printf("primary: standby connected from %s; shipping begins", conn.RemoteAddr())

	// Acks flow back continuously while ticks ship, so a read stalled past
	// the idle bound means the standby is gone, not slow.
	sh, err := repro.StartPrimary(e, repro.NewIdleConn(conn, netTO), repro.ShipperOptions{MaxLagTicks: lag})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	cells := opts.Table.NumCells()
	batch := make([]repro.Update, updates)
	start := time.Now()
	for t := 0; t < ticks; t++ {
		for i := range batch {
			batch[i] = repro.Update{Cell: uint32(rng.Intn(cells)), Value: rng.Uint32()}
		}
		if err := e.ApplyTickParallel(batch); err != nil {
			log.Fatal(err)
		}
		if tickMs > 0 {
			time.Sleep(time.Duration(tickMs) * time.Millisecond)
		}
		if t%100 == 99 {
			st := sh.Stats()
			log.Printf("primary: tick %d; standby acked %d (lag %d ticks)",
				t, st.Acked, e.NextTick()-1-st.Acked)
		}
	}
	last := e.NextTick() - 1
	if err := sh.AwaitAck(last, 5*time.Minute); err != nil {
		log.Fatalf("primary: standby never caught up: %v", err)
	}
	st := sh.Stats()
	log.Printf("primary: %d ticks in %v; shipped %d ticks / %.1f MB (+%.1f MB bootstrap)",
		ticks, time.Since(start).Round(time.Millisecond),
		st.TicksShipped, float64(st.BytesShipped)/1e6, float64(st.SnapshotBytes)/1e6)
	fmt.Printf("primary final state: tick %d, checksum %08x\n",
		e.NextTick(), crc32.ChecksumIEEE(e.Store().Slab()))
	log.Printf("primary: exiting now — the standby should promote")
	sh.Stop() //nolint:errcheck // the deliberate "crash"
}

func runStandby(opts repro.EngineOptions, connect string, netTO time.Duration) {
	conn, err := repro.DialTimeout(connect, netTO)
	if err != nil {
		log.Fatal(err)
	}
	// Tick frames arrive at the primary's pacing; a read stalled past the
	// idle bound means the link died without closing — seal and promote.
	sb, err := repro.StartStandby(opts, repro.NewIdleConn(conn, netTO))
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("standby: connected to %s; waiting for bootstrap", connect)
	select {
	case <-sb.Ready():
		st := sb.Stats()
		log.Printf("standby: bootstrapped %.1f MB as of tick %d; mirroring",
			float64(st.SnapshotBytes)/1e6, st.StartTick)
	case <-sb.Done():
		log.Fatalf("standby: bootstrap failed: %v", sb.Err())
	}

	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			st := sb.Stats()
			log.Printf("standby: applied through tick %d (%d streamed ticks)",
				st.Applied, st.TicksApplied)
			continue
		case <-sb.Done():
		}
		break
	}
	log.Printf("standby: stream ended (%v); promoting", sb.Err())

	crash := time.Now()
	e, err := sb.Promote()
	if err != nil {
		log.Fatalf("standby: promote: %v", err)
	}
	takeover := time.Since(crash)
	defer e.Close()
	log.Printf("standby: PROMOTED in %v; now primary at tick %d", takeover.Round(time.Microsecond), e.NextTick())
	fmt.Printf("promoted state: tick %d, checksum %08x\n",
		e.NextTick(), crc32.ChecksumIEEE(e.Store().Slab()))
	log.Printf("standby: the checksum above should match the primary's final line")
}
