// Command tracegen generates update traces in the binary trace format: the
// synthetic Zipfian workloads of Table 4, a recording of the Knights and
// Archers prototype game server (Table 5), or any registered workload
// scenario (login storms, raids, zone migration, flash crowds, …).
//
// Usage:
//
//	tracegen -kind zipf -updates 64000 -skew 0.8 -ticks 1000 -out zipf.trace
//	tracegen -kind game -units 400128 -ticks 1000 -out battle.trace
//	tracegen -kind scenario -scenario raid -updates 64000 -ticks 1000 -out raid.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/game"
	"repro/internal/gamestate"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "zipf", "zipf, game or scenario")
		out      = flag.String("out", "", "output file (required)")
		ticks    = flag.Int("ticks", 1000, "number of ticks")
		seed     = flag.Int64("seed", 1, "generator seed")
		updates  = flag.Int("updates", 64000, "zipf/scenario: baseline updates per tick")
		skew     = flag.Float64("skew", 0.8, "zipf/scenario: skew in [0,1)")
		rows     = flag.Int("rows", 1_000_000, "zipf/scenario: table rows")
		cols     = flag.Int("cols", 10, "zipf/scenario: table columns")
		units    = flag.Int("units", 400_128, "game: number of units")
		scenario = flag.String("scenario", "", "scenario: workload name, one of "+strings.Join(workload.Names(), ", "))
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}

	var src trace.Source
	switch *kind {
	case "zipf":
		z, err := trace.NewZipfian(trace.ZipfianConfig{
			Table:          gamestate.Table{Rows: *rows, Cols: *cols, CellSize: 4, ObjSize: 512},
			UpdatesPerTick: *updates,
			Ticks:          *ticks,
			Skew:           *skew,
			Seed:           *seed,
		})
		if err != nil {
			fatal(err)
		}
		src = z
	case "game":
		cfg := game.DefaultConfig()
		cfg.Units = *units
		cfg.Seed = *seed
		mem, stats, err := game.GenerateTrace(cfg, *ticks)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("game: %s\n", stats)
		src = mem
	case "scenario":
		if *scenario == "" {
			fatal(fmt.Errorf("-kind scenario requires -scenario (one of %s)",
				strings.Join(workload.Names(), ", ")))
		}
		if !workload.Registered(*scenario) {
			fatal(fmt.Errorf("unknown scenario %q; registered scenarios: %s",
				*scenario, strings.Join(workload.Names(), ", ")))
		}
		w, err := workload.New(*scenario, workload.Config{
			Table:          gamestate.Table{Rows: *rows, Cols: *cols, CellSize: 4, ObjSize: 512},
			UpdatesPerTick: *updates,
			Ticks:          *ticks,
			Skew:           *skew,
			Seed:           *seed,
		})
		if err != nil {
			fatal(err)
		}
		src = w
	default:
		fatal(fmt.Errorf("unknown kind %q (zipf|game|scenario)", *kind))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := trace.Write(f, src); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d ticks, %d cells, %d bytes\n",
		*out, src.NumTicks(), src.NumCells(), info.Size())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
