// Command tracegen generates update traces in the binary trace format: the
// synthetic Zipfian workloads of Table 4, a recording of the Knights and
// Archers prototype game server (Table 5), or any registered workload
// scenario (login storms, raids, zone migration, flash crowds, …).
//
// The -kind switch and its usage text are generated from the kinds registry
// below, and the scenario list from workload.Names() — adding a generator
// or a scenario updates the CLI without touching hand-maintained strings.
//
// Usage:
//
//	tracegen -kind zipf -updates 64000 -skew 0.8 -ticks 1000 -out zipf.trace
//	tracegen -kind game -units 400128 -ticks 1000 -out battle.trace
//	tracegen -kind scenario -scenario raid -updates 64000 -ticks 1000 -out raid.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/game"
	"repro/internal/gamestate"
	"repro/internal/trace"
	"repro/internal/workload"
)

// genConfig carries every parsed flag a generator may need.
type genConfig struct {
	ticks    int
	seed     int64
	updates  int
	skew     float64
	rows     int
	cols     int
	units    int
	scenario string
}

func (c genConfig) table() gamestate.Table {
	return gamestate.Table{Rows: c.rows, Cols: c.cols, CellSize: 4, ObjSize: 512}
}

// kinds is the generator registry the -kind switch dispatches over and the
// usage text lists.
var kinds = map[string]func(genConfig) (trace.Source, error){
	"zipf": func(c genConfig) (trace.Source, error) {
		return trace.NewZipfian(trace.ZipfianConfig{
			Table:          c.table(),
			UpdatesPerTick: c.updates,
			Ticks:          c.ticks,
			Skew:           c.skew,
			Seed:           c.seed,
		})
	},
	"game": func(c genConfig) (trace.Source, error) {
		cfg := game.DefaultConfig()
		cfg.Units = c.units
		cfg.Seed = c.seed
		mem, stats, err := game.GenerateTrace(cfg, c.ticks)
		if err != nil {
			return nil, err
		}
		fmt.Printf("game: %s\n", stats)
		return mem, nil
	},
	"scenario": func(c genConfig) (trace.Source, error) {
		if c.scenario == "" {
			return nil, fmt.Errorf("-kind scenario requires -scenario (one of %s)",
				strings.Join(workload.Names(), ", "))
		}
		if !workload.Registered(c.scenario) {
			return nil, fmt.Errorf("unknown scenario %q; registered scenarios: %s",
				c.scenario, strings.Join(workload.Names(), ", "))
		}
		return workload.New(c.scenario, workload.Config{
			Table:          c.table(),
			UpdatesPerTick: c.updates,
			Ticks:          c.ticks,
			Skew:           c.skew,
			Seed:           c.seed,
		})
	},
}

// kindNames lists the registered generators, sorted.
func kindNames() []string {
	names := make([]string, 0, len(kinds))
	for n := range kinds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func main() {
	var (
		kind     = flag.String("kind", "zipf", "trace generator, one of "+strings.Join(kindNames(), ", "))
		out      = flag.String("out", "", "output file (required)")
		ticks    = flag.Int("ticks", 1000, "number of ticks")
		seed     = flag.Int64("seed", 1, "generator seed")
		updates  = flag.Int("updates", 64000, "zipf/scenario: baseline updates per tick")
		skew     = flag.Float64("skew", 0.8, "zipf/scenario: skew in [0,1)")
		rows     = flag.Int("rows", 1_000_000, "zipf/scenario: table rows")
		cols     = flag.Int("cols", 10, "zipf/scenario: table columns")
		units    = flag.Int("units", 400_128, "game: number of units")
		scenario = flag.String("scenario", "", "scenario: workload name, one of "+strings.Join(workload.Names(), ", "))
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}
	gen, ok := kinds[*kind]
	if !ok {
		fatal(fmt.Errorf("unknown kind %q (%s)", *kind, strings.Join(kindNames(), "|")))
	}
	src, err := gen(genConfig{
		ticks: *ticks, seed: *seed, updates: *updates, skew: *skew,
		rows: *rows, cols: *cols, units: *units, scenario: *scenario,
	})
	if err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := trace.Write(f, src); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d ticks, %d cells, %d bytes\n",
		*out, src.NumTicks(), src.NumCells(), info.Size())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
