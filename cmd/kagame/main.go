// Command kagame runs the Knights and Archers prototype game server,
// optionally persisting every tick through the checkpointing engine. On
// restart with the same -dir, it recovers the battle and continues from the
// crash tick.
//
// Usage:
//
//	kagame -units 40000 -ticks 300                      # in-memory battle
//	kagame -units 40000 -ticks 300 -dir /tmp/ka -mode cou -hz 0
//	kagame -dir /tmp/ka -mode cou -ticks 300            # restart: recovers
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/game"
	"repro/internal/wal"
)

func main() {
	var (
		units = flag.Int("units", 40_000, "number of units (Table 5 uses 400128)")
		ticks = flag.Int("ticks", 300, "ticks to simulate this run")
		seed  = flag.Int64("seed", 1, "battle seed")
		dir   = flag.String("dir", "", "persistence directory (empty = no durability)")
		mode  = flag.String("mode", "cou", "checkpointer: naive|cou|none")
		hz    = flag.Float64("hz", 0, "tick rate; 0 runs unpaced")
		every = flag.Int("report", 50, "print a status line every N ticks")
	)
	flag.Parse()

	cfg := game.DefaultConfig()
	cfg.Units = *units
	cfg.Seed = *seed
	g, err := game.New(cfg)
	if err != nil {
		fatal(err)
	}

	var eng *engine.Engine
	if *dir != "" {
		var m engine.Mode
		switch *mode {
		case "naive":
			m = engine.ModeNaiveSnapshot
		case "cou":
			m = engine.ModeCopyOnUpdate
		case "none":
			m = engine.ModeNone
		default:
			fatal(fmt.Errorf("unknown mode %q", *mode))
		}
		eng, err = engine.Open(engine.Options{
			Table: g.Table(), Dir: *dir, Mode: m, SyncEveryTick: true,
		})
		if err != nil {
			fatal(err)
		}
		defer eng.Close()
		rec := eng.Recovery()
		switch {
		case eng.NextTick() == 0:
			// Fresh world: persist the initial deployment as tick 0, so
			// cells that no battle tick ever touches are still durable.
			boot := make([]wal.Update, 0, g.Table().NumCells())
			for c := 0; c < g.Table().NumCells(); c++ {
				boot = append(boot, wal.Update{
					Cell:  uint32(c),
					Value: floatBits(g.Attr(c/game.NumAttrs, c%game.NumAttrs)),
				})
			}
			if err := eng.ApplyTick(boot); err != nil {
				fatal(err)
			}
			fmt.Printf("bootstrapped %d cells as tick 0\n", len(boot))
		default:
			fmt.Printf("recovered: image epoch %d as of tick %d, replayed %d ticks (%d updates) in %v\n",
				rec.Epoch, rec.AsOfTick, rec.ReplayedTicks, rec.ReplayedUpdates,
				rec.RestoreDuration+rec.ReplayDuration)
			// Fast-forward the deterministic battle to the recovered tick so
			// game logic and durable state line up: battle tick i maps to
			// engine tick i (engine tick 0 is the deployment bootstrap).
			fmt.Printf("fast-forwarding battle to tick %d...\n", eng.NextTick()-1)
			for uint64(g.TickIndex())+1 < eng.NextTick() {
				g.Step()
			}
			if err := verify(g, eng); err != nil {
				fatal(fmt.Errorf("recovered state diverges from battle replay: %w", err))
			}
			fmt.Println("verified: recovered state matches deterministic replay")
		}
	}

	var batch []wal.Update
	g.SetRecorder(game.RecorderFunc(func(cell uint32, value float32) {
		batch = append(batch, wal.Update{Cell: cell, Value: floatBits(value)})
	}))

	var tickLen time.Duration
	if *hz > 0 {
		tickLen = time.Duration(float64(time.Second) / *hz)
	}
	next := time.Now()
	start := time.Now()
	for i := 0; i < *ticks; i++ {
		batch = batch[:0]
		updates := g.Step()
		if eng != nil {
			if err := eng.ApplyTick(batch); err != nil {
				fatal(err)
			}
		}
		if (i+1)%*every == 0 {
			fmt.Printf("tick %6d: %6d updates, %5d active units\n",
				g.TickIndex(), updates, g.ActiveCount())
		}
		if tickLen > 0 {
			next = next.Add(tickLen)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
	}
	el := time.Since(start)
	fmt.Printf("done: %s in %v (%.1f ms/tick)\n", g.Stats(), el.Round(time.Millisecond),
		float64(el.Milliseconds())/float64(*ticks))
	if eng != nil {
		st := eng.CheckpointStats()
		fmt.Printf("checkpoints: %d completed, %d bytes written, max pause %v\n",
			st.Checkpoints.Load(), st.BytesWritten.Load(),
			time.Duration(st.PauseMax.Load()))
	}
}

// verify byte-compares the battle's attribute table with the engine store.
func verify(g *game.Game, eng *engine.Engine) error {
	cells := g.Table().NumCells()
	for c := 0; c < cells; c++ {
		unit, attr := c/game.NumAttrs, c%game.NumAttrs
		want := floatBits(g.Attr(unit, attr))
		if got := eng.Store().Cell(uint32(c)); got != want {
			return fmt.Errorf("cell %d (unit %d attr %d): store %#x, battle %#x",
				c, unit, attr, got, want)
		}
	}
	return nil
}

func floatBits(f float32) uint32 {
	return uint32FromFloat(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kagame:", err)
	os.Exit(1)
}
