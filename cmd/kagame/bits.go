package main

import "math"

// uint32FromFloat reinterprets a float32's bits for storage in 4-byte cells.
func uint32FromFloat(f float32) uint32 { return math.Float32bits(f) }
