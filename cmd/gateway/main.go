// Command gateway runs the session tier as a real TCP service: a gateway
// process fronts a tick engine, accepts framed client sessions, batches
// each tick's intents into the canonical update set, and pushes
// interest-managed deltas back out — plus a swarm role that floods it with
// simulated TCP clients and measures intent→visible latency.
//
// Terminal 1 (the gateway; recovers the world from -dir if it holds state):
//
//	gateway -role serve -listen :7901 -dir /tmp/gateway-world -tick 50ms
//
// Terminal 2 (the client swarm):
//
//	gateway -role swarm -connect localhost:7901 -clients 64 \
//	    -scenario hotspot -updates 6400 -ticks 200
//
// Killing the gateway mid-run loses nothing durable: restarting terminal 1
// crash-recovers the engine (newest checkpoint image + WAL replay) and the
// swarm reconnects its sessions — the reconnect-storm path gatewaybench
// measures. The swarm decomposes each scenario tick over its clients by
// object span (the session.Driver decomposition, over real sockets), so
// the world the gateway builds is the same canonical per-tick update set
// the in-process harnesses verify byte for byte.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/gamestate"
	"repro/internal/metrics"
	"repro/internal/replication"
	"repro/internal/session"
	"repro/internal/telemetry"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	var (
		role     = flag.String("role", "", "serve | swarm")
		listen   = flag.String("listen", ":7901", "serve: address to accept client sessions on")
		dir      = flag.String("dir", "", "serve: engine directory (recovered if it holds prior state)")
		mode     = flag.String("mode", "cou", "serve: checkpoint method (cou | naive)")
		shards   = flag.Int("shards", 1, "serve: engine shards")
		tick     = flag.Duration("tick", 50*time.Millisecond, "serve: tick interval (the paper's 50ms budget)")
		ticks    = flag.Int("ticks", 0, "serve: stop after this many ticks (0 = run until killed)")
		ckptEach = flag.Int("checkpoint-every", 64, "serve: checkpoint interval in ticks (0 = never)")
		connect  = flag.String("connect", "", "swarm: gateway address")
		clients  = flag.Int("clients", 64, "swarm: TCP client sessions")
		scenario = flag.String("scenario", "hotspot", "swarm: workload scenario, one of "+strings.Join(workload.Names(), ", "))
		updates  = flag.Int("updates", 6400, "swarm: baseline updates per tick")
		swTicks  = flag.Int("swarmticks", 200, "swarm: scenario length in ticks")
		skew     = flag.Float64("skew", 0.8, "swarm: scenario skew in [0,1)")
		seed     = flag.Int64("seed", 1, "swarm: workload seed")
		interval = flag.Duration("interval", 0, "swarm: pacing between submitted ticks (0 = as fast as the gateway ticks)")
		aoiSlots = flag.Int("aoi-slots", 1, "swarm: interest window widening beyond each client's span, in 64-object slots")
		rows     = flag.Int("rows", 100_000, "table rows (quick-scale default; must match the serve side)")
		cols     = flag.Int("cols", 10, "table columns (must match the serve side)")
		netTO    = flag.Duration("net-timeout", 30*time.Second,
			"bound on dial and on any single session-stream read; a dead peer "+
				"surfaces a typed timeout error instead of hanging (0 = wait forever)")
		telAddr = flag.String("telemetry-addr", "",
			"serve live telemetry (/metrics, /spans.json, /debug/pprof) on this address; "+
				"empty keeps collection off with zero overhead")
	)
	flag.Parse()
	if *telAddr != "" {
		ts, err := telemetry.Serve(*telAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer ts.Close() //nolint:errcheck // process exit
		log.Printf("gateway: telemetry on http://%s/metrics", ts.Addr)
	}
	table := gamestate.Table{Rows: *rows, Cols: *cols, CellSize: 4, ObjSize: 512}
	switch *role {
	case "serve":
		runServe(table, *listen, *dir, *mode, *shards, *tick, *ticks, *ckptEach, *netTO)
	case "swarm":
		runSwarm(table, *connect, *clients, *scenario, *updates, *swTicks, *skew, *seed,
			*interval, *aoiSlots, *netTO)
	default:
		fmt.Fprintln(os.Stderr, "gateway: -role must be serve or swarm")
		flag.Usage()
		os.Exit(2)
	}
}

// runServe crash-recovers the world, opens a gateway over it, accepts
// client sessions, and drives the tick loop at the configured pace.
func runServe(table gamestate.Table, listen, dir, mode string, shards int,
	tick time.Duration, maxTicks, ckptEach int, netTO time.Duration) {
	if dir == "" {
		log.Fatal("gateway: -dir is required for serve")
	}
	m := engine.ModeCopyOnUpdate
	if mode == "naive" {
		m = engine.ModeNaiveSnapshot
	}
	e, pres, err := engine.RecoverFrom(engine.Options{Table: table, Dir: dir, Mode: m, Shards: shards})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	if pres.Restored || pres.NextTick > 0 {
		log.Printf("serve: recovered to tick %d in %v (restore %v ∥ replay %v)",
			pres.NextTick, pres.TotalDuration.Round(time.Millisecond),
			pres.RestoreDuration.Round(time.Millisecond), pres.ReplayDuration.Round(time.Millisecond))
	}
	gw, err := session.NewGateway(session.Options{World: session.EngineWorld{E: e}})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("serve: accepting sessions on %s (world tick %d, %d objects)",
		listen, e.NextTick(), table.NumObjects())
	var served atomic.Uint64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed on shutdown
			}
			served.Add(1)
			go func() {
				// A session silent past the idle bound is dead — the typed
				// timeout tears it down instead of pinning the slot forever.
				if err := gw.ServeConn(replication.NewIdleConn(conn, netTO)); err != nil {
					log.Printf("serve: session ended: %v", err)
				}
			}()
		}
	}()

	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	start := e.NextTick()
	for range ticker.C {
		t := e.NextTick()
		if _, err := gw.Step(); err != nil {
			log.Fatalf("serve: tick %d: %v", t, err)
		}
		if ckptEach > 0 && t > 0 && t%uint64(ckptEach) == 0 {
			ck0 := time.Now()
			if _, err := e.CheckpointNow(); err != nil {
				log.Fatalf("serve: checkpoint at tick %d: %v", t, err)
			}
			log.Printf("serve: checkpoint at tick %d took %v", t, time.Since(ck0).Round(time.Millisecond))
		}
		if t%64 == 0 {
			st := gw.Stats()
			log.Printf("serve: tick %d, %d sessions, %d intents, %d deltas (%d dropped), %d conns served",
				t, gw.Sessions(), st.Intents, st.Deltas, st.Dropped, served.Load())
		}
		if maxTicks > 0 && e.NextTick() >= start+uint64(maxTicks) {
			break
		}
	}
	st := gw.Stats()
	log.Printf("serve: done at tick %d: %d ticks, %d intents, %d deltas (%d dropped); state durable in %s",
		e.NextTick(), st.Ticks, st.Intents, st.Deltas, st.Dropped, dir)
}

// swarmClient is one TCP client: its owned span, its session, and its
// latency samples. Latency is submit→next-visible-delta: the serve side
// ticks at its own pace and may coalesce several submitted batches into one
// world tick, so each pending submit stamp is resolved by the first delta
// that arrives after it (a client's own intents always fall inside its
// interest window, so every submit is eventually answered).
type swarmClient struct {
	id       int
	span     session.Range
	client   *session.Client
	mu       sync.Mutex
	pending  []time.Time
	lat      []float64
	deltas   int
	readDone chan struct{}
}

// runSwarm floods a gateway with TCP clients replaying a scenario
// decomposed by object span, and reports submit→delta latency.
func runSwarm(table gamestate.Table, connect string, clients int, scenario string,
	updates, ticks int, skew float64, seed int64, interval time.Duration,
	aoiSlots int, netTO time.Duration) {
	if connect == "" {
		log.Fatal("gateway: -connect is required for swarm")
	}
	if clients < 1 || clients > table.NumObjects() {
		log.Fatalf("gateway: -clients %d outside [1,%d]", clients, table.NumObjects())
	}
	src, err := workload.New(scenario, workload.Config{
		Table: table, UpdatesPerTick: updates, Ticks: ticks, Skew: skew, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	objects := table.NumObjects()
	span := func(i int) session.Range {
		return session.Range{Lo: i * objects / clients, Hi: (i + 1) * objects / clients}
	}
	ownerOf := func(obj int) int {
		i := obj * clients / objects
		for i+1 < clients && obj >= span(i+1).Lo {
			i++
		}
		for i > 0 && obj < span(i).Lo {
			i--
		}
		return i
	}

	swarm := make([]*swarmClient, clients)
	for i := range swarm {
		conn, err := replication.Dial(connect, netTO)
		if err != nil {
			log.Fatalf("swarm: client %d: %v", i, err)
		}
		r := span(i)
		aoi := session.Range{Lo: r.Lo - aoiSlots*cluster.SlotSize, Hi: r.Hi + aoiSlots*cluster.SlotSize}
		if aoi.Lo < 0 {
			aoi.Lo = 0
		}
		if aoi.Hi > objects {
			aoi.Hi = objects
		}
		c, err := session.NewClient(replication.NewIdleConn(conn, netTO), table, uint64(i), aoi)
		if err != nil {
			log.Fatalf("swarm: client %d handshake: %v", i, err)
		}
		sc := &swarmClient{id: i, span: r, client: c, readDone: make(chan struct{})}
		swarm[i] = sc
		go sc.readLoop()
	}
	first := swarm[0].client.NextTick
	log.Printf("swarm: %d clients connected to %s (world tick %d)", clients, connect, first)

	cellsPerObj := uint32(table.CellsPerObject())
	var cells []uint32
	var batch []wal.Update
	per := make([][]wal.Update, clients)
	sent := 0
	for t := 0; t < ticks; t++ {
		cells, batch = workload.TickUpdates(src, t, cells, batch)
		for i := range per {
			per[i] = per[i][:0]
		}
		for _, u := range batch {
			i := ownerOf(int(u.Cell / cellsPerObj))
			per[i] = append(per[i], u)
		}
		now := time.Now()
		for i, sc := range swarm {
			if len(per[i]) == 0 {
				continue
			}
			sc.mu.Lock()
			sc.pending = append(sc.pending, now)
			sc.mu.Unlock()
			if err := sc.client.Submit(per[i]); err != nil {
				log.Fatalf("swarm: client %d submit: %v", i, err)
			}
			sent += len(per[i])
		}
		if interval > 0 {
			time.Sleep(interval)
		}
	}
	// Give in-flight deltas a beat to drain, then close everything.
	time.Sleep(500 * time.Millisecond)
	var lat []float64
	deltas := 0
	for _, sc := range swarm {
		sc.client.Close()
		<-sc.readDone
		sc.mu.Lock()
		lat = append(lat, sc.lat...)
		deltas += sc.deltas
		sc.mu.Unlock()
	}
	if len(lat) == 0 {
		log.Fatalf("swarm: %d intents sent but no deltas observed — is the serve tick loop running?", sent)
	}
	s := metrics.Summarize(lat)
	fmt.Printf("swarm: %d clients, %d intents, %d deltas; submit→delta latency ms: mean %.2f p50 %.2f p95 %.2f max %.2f\n",
		clients, sent, deltas, s.Mean, s.P50, s.P95, s.Max)
}

// readLoop drains one client's delta stream: each arriving delta resolves
// every submit stamped before it (see swarmClient).
func (sc *swarmClient) readLoop() {
	defer close(sc.readDone)
	for {
		_, _, err := sc.client.ReadDelta()
		if err != nil {
			return // connection closed at end of run
		}
		now := time.Now()
		sc.mu.Lock()
		for _, t0 := range sc.pending {
			sc.lat = append(sc.lat, now.Sub(t0).Seconds()*1e3)
		}
		sc.pending = sc.pending[:0]
		sc.deltas++
		sc.mu.Unlock()
	}
}
