package repro

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// smallSimConfig scales the default down for fast facade tests.
func smallSimConfig() SimConfig {
	cfg := DefaultSimConfig()
	cfg.Table.Rows = 50_000
	cfg.Params.MemBandwidth /= 10
	cfg.Params.DiskBandwidth /= 10
	return cfg
}

func TestFacadeSimulate(t *testing.T) {
	cfg := smallSimConfig()
	src, err := NewZipfianTrace(ZipfianTraceConfig{
		Table:          cfg.Table,
		UpdatesPerTick: 500,
		Ticks:          60,
		Skew:           0.8,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(CopyOnUpdate, cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != CopyOnUpdate || res.Ticks != 60 {
		t.Errorf("unexpected result header: %+v", res.Method)
	}
	if res.RecoveryTime <= 0 {
		t.Error("no recovery estimate")
	}
}

func TestFacadeSimulateAll(t *testing.T) {
	cfg := smallSimConfig()
	src, err := NewZipfianTrace(ZipfianTraceConfig{
		Table: cfg.Table, UpdatesPerTick: 200, Ticks: 40, Skew: 0.5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := SimulateAll(Methods(), cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("%d results, want 6", len(results))
	}
}

func TestFacadeDefaults(t *testing.T) {
	if DefaultParams().TickFreq != 30 {
		t.Error("default params lost Table 3 values")
	}
	if DefaultTable().NumCells() != 10_000_000 {
		t.Error("default table lost Table 4 geometry")
	}
	if DefaultZipfianTraceConfig().UpdatesPerTick != 64_000 {
		t.Error("default trace config lost Table 4 values")
	}
	if DefaultGameConfig().Units != 400_128 {
		t.Error("default game config lost Table 5 values")
	}
	if len(Methods()) != 6 {
		t.Error("Methods() incomplete")
	}
}

func TestFacadeEngineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tab := Table{Rows: 128, Cols: 8, CellSize: 4, ObjSize: 512}
	e, err := OpenEngine(EngineOptions{
		Table: tab, Dir: dir, Mode: ModeCopyOnUpdate, SyncEveryTick: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 30; tick++ {
		batch := []Update{{Cell: uint32(tick), Value: uint32(tick * 10)}}
		if err := e.ApplyTick(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := OpenEngine(EngineOptions{Table: tab, Dir: dir, Mode: ModeCopyOnUpdate})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	for tick := 0; tick < 30; tick++ {
		if got := e2.Store().Cell(uint32(tick)); got != uint32(tick*10) {
			t.Fatalf("cell %d = %d after recovery, want %d", tick, got, tick*10)
		}
	}
	if e2.NextTick() != 30 {
		t.Errorf("NextTick = %d, want 30", e2.NextTick())
	}
}

func TestFacadeGameTrace(t *testing.T) {
	cfg := DefaultGameConfig()
	cfg.Units = 2000
	src, stats, err := GenerateGameTrace(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if src.NumTicks() != 20 || stats.Ticks != 20 {
		t.Errorf("trace/stat shape: %d/%d", src.NumTicks(), stats.Ticks)
	}
	if stats.Units != 2000 || stats.Attrs != 13 {
		t.Errorf("stats: %+v", stats)
	}
}

// TestFacadeReplicationFailover drives the public replication API end to
// end: primary → warm standby over a pipe → primary death → promotion,
// with the promoted engine byte-identical to the primary's final state.
func TestFacadeReplicationFailover(t *testing.T) {
	tab := Table{Rows: 1024, Cols: 8, CellSize: 4, ObjSize: 512}
	opts := func(dir string) EngineOptions {
		return EngineOptions{Table: tab, Dir: dir, Mode: ModeCopyOnUpdate}
	}
	p, err := OpenEngine(opts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	apply := func(from, to int) {
		t.Helper()
		for tick := from; tick < to; tick++ {
			batch := []Update{{Cell: uint32(tick % tab.NumCells()), Value: uint32(tick) + 7}}
			if err := p.ApplyTick(batch); err != nil {
				t.Fatal(err)
			}
		}
	}
	apply(0, 20)

	pc, sc := net.Pipe()
	sb, err := StartStandby(opts(t.TempDir()), sc)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := StartPrimary(p, pc, ShipperOptions{MaxLagTicks: 4})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sb.Ready():
	case <-sb.Done():
		t.Fatalf("standby bootstrap failed: %v", sb.Err())
	}
	apply(20, 50)
	if err := sh.AwaitAck(49, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sh.Stop(); err != nil {
		t.Fatalf("shipper stream error: %v", err)
	}
	promoted, err := sb.Promote()
	if err != nil {
		t.Fatal(err)
	}
	defer promoted.Close()
	if promoted.NextTick() != 50 {
		t.Fatalf("promoted at tick %d, want 50", promoted.NextTick())
	}
	if !bytes.Equal(promoted.Store().Slab(), p.Store().Slab()) {
		t.Fatal("promoted standby differs from primary state")
	}
}
